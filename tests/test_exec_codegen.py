"""Source-codegen backend (``exec/codegen.py``): bitwise parity with the
closure interpreter across generic and specialised tiers, cache accounting
for code objects, the ``REPRO_CODEGEN_DUMP`` knob, and codegen-compiled
shard chunks."""
import os

import numpy as np
import pytest

import repro as rp
from helpers import run_both
from repro.exec.codegen import CodegenPlan, compile_codegen
from repro.exec.plan import (
    Plan,
    clear_plan_cache,
    compile_plan,
    plan_cache_stats,
    plan_for,
)
from repro.util import ExecError, ReproError

rng = np.random.default_rng(29)


def _sum_kernel():
    def f(v):
        return rp.sum(rp.map(lambda x: rp.sin(x) * x, v)) + rp.astype(
            rp.size(v), rp.F64
        )

    return rp.compile(rp.trace_like(f, (np.ones(4),)))


#: The construct battery from the plan-cache suite, re-run here against the
#: codegen emitter: every SOAC strategy/extent fast path, control flow,
#: accumulators, and the specialised folds.
_BATTERY = [
    ("size_iota_replicate", lambda v: rp.sum(
        rp.map(lambda i: rp.astype(i, rp.F64), rp.iota(rp.size(v)))
    ) * rp.sum(v), (np.ones(5),), (rng.standard_normal(7),)),
    ("reduce_nonempty", lambda v: rp.sum(v) + rp.reduce(
        lambda a, b: rp.maximum(a, b), -1.0e9, v
    ), (np.ones(6),), (rng.standard_normal(9),)),
    ("reduce_empty", lambda v: rp.sum(v), (np.zeros(0),), (np.zeros(0),)),
    ("reduce_one", lambda v: rp.sum(v) * 3.0, (np.ones(1),),
     (rng.standard_normal(1),)),
    ("scan_hist", lambda inds, vals: rp.sum(
        rp.scan(lambda a, b: a + b, 0.0, vals)
    ) + rp.sum(rp.reduce_by_index(4, lambda a, b: a + b, 0.0, inds, vals)),
     (np.array([0, 1, 2]), np.ones(3)),
     (np.array([3, 1, -1, 2, 0]), rng.standard_normal(5))),
    ("loop_while_if", lambda x, v: rp.cond(
        x > 0.0,
        lambda: rp.fori_loop(3, lambda i, a: a + rp.sum(v), x),
        lambda: rp.while_loop(lambda a: a < 4.0, lambda a: a + 1.0, x),
    ), (0.5, np.ones(4)), (-2.5, rng.standard_normal(6))),
    ("update_scatter_concat", lambda v, inds: rp.sum(
        rp.concat(rp.update(v, 1, 9.0),
                  rp.reverse(rp.scatter(rp.zeros_like(v), inds, v)))
    ), (np.ones(4), np.array([0, 2, 1, 3])),
     (rng.standard_normal(4), np.array([3, 0, 2, 1]))),
    ("nested_map_redomap", lambda m: rp.map(
        lambda r: rp.sum(rp.map(lambda x: rp.exp(x) * x, r)), m
    ), (np.ones((3, 4)),), (rng.standard_normal((5, 2)),)),
]


# ---------------------------------------------------------------------------
# Bitwise parity: codegen vs plan, generic vs specialised
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name,f,ex,args", _BATTERY, ids=[b[0] for b in _BATTERY])
def test_codegen_generic_and_specialized_bitwise_battery(name, f, ex, args):
    fc = rp.compile(rp.trace_like(f, ex))
    run_both(fc, *args)  # includes the suite-wide plan↔codegen bitwise check
    fun = fc.fun
    plan = compile_plan(fun)
    generic = compile_codegen(fun)
    spec = compile_codegen(fun, args)
    rp_ = plan.run(tuple(args))
    rg = generic.run(tuple(args))
    rs = spec.run(tuple(args))
    assert len(rp_) == len(rg) == len(rs)
    for a, b, c in zip(rp_, rg, rs):
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b))
        np.testing.assert_array_equal(np.asarray(a), np.asarray(c))


def test_codegen_gradients_bitwise_vs_plan():
    def f(v, w):
        s = rp.sum(v * w)
        wh = rp.while_loop(lambda a: a < 10.0, lambda a: a * 2.0, 1.0 + 0.0 * s)
        return s * wh + rp.sum(rp.scan(lambda a, b: a + b, 0.0, v))

    v, w = rng.standard_normal(8), rng.standard_normal(8)
    fc = rp.compile(rp.trace_like(f, (v, w)))
    g = rp.grad(fc)
    for a, b in zip(g(v, w, backend="plan"), g(v, w, backend="codegen")):
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b))


def test_codegen_batched_bitwise_vs_plan():
    fun = rp.trace_like(lambda v, w: rp.sum(v * w) * rp.sum(v + w),
                        (np.ones(6), np.ones(6)))
    B = 4
    vb = rng.standard_normal((B, 6))
    w = rng.standard_normal(6)
    rp_ = Plan(fun).run_batched((vb, w), (True, False), B)
    cg = CodegenPlan(fun).run_batched((vb, w), (True, False), B)
    for a, b in zip(rp_, cg):
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b))


def test_specialized_codegen_rejects_other_shapes_loudly():
    fc = _sum_kernel()
    spec = compile_codegen(fc.fun, (np.ones(4),))
    with pytest.raises(ExecError, match="specialised for argument 0"):
        spec.run((np.ones(7),))
    with pytest.raises(ExecError, match="batched flags"):
        spec.run_batched((np.ones((2, 4)),), (True,), 2)


# ---------------------------------------------------------------------------
# Cache-tier accounting: code objects ride the same two-tier cache
# ---------------------------------------------------------------------------


def test_codegen_shape_sweep_one_code_object_per_signature():
    fc = _sum_kernel()
    clear_plan_cache()
    sizes = (3, 4, 5, 6, 7, 8)
    for n in sizes:
        x = rng.standard_normal(n)
        np.testing.assert_allclose(
            fc(x, backend="codegen"), fc(x, backend="ref"),
            rtol=1e-12, atol=1e-12,
        )
    st = plan_cache_stats()
    assert st["misses"] == 1, f"sweep re-compiled codegen plans: {st}"
    assert st["hits"] + st["specialized_hits"] == len(sizes) - 1
    em = st["emitters"]["codegen"]
    assert em["plans"] == 1
    assert em["code_objects"] == 1
    assert em["source_bytes"] > 0
    assert em["compile_s"] >= 0.0 and em["emit_s"] >= 0.0


def test_codegen_promotion_counts_specialised_code_objects(monkeypatch):
    monkeypatch.setenv("REPRO_PLAN_SPECIALIZE", "1")
    monkeypatch.setenv("REPRO_PLAN_SPECIALIZE_AFTER", "2")
    fc = _sum_kernel()
    clear_plan_cache()
    x = rng.standard_normal(6)
    results = [np.asarray(fc(x, backend="codegen")) for _ in range(5)]
    st = plan_cache_stats()
    assert st["promotions"] == 1
    assert st["specialized_entries"] == 1
    em = st["emitters"]["codegen"]
    assert em["plans"] == 2  # one generic + one promoted specialised
    assert em["code_objects"] == 2
    for r in results[1:]:  # bitwise across the generic->specialised switch
        np.testing.assert_array_equal(results[0], r)


def test_plan_and_codegen_emitters_get_separate_cache_rows():
    fc = _sum_kernel()
    clear_plan_cache()
    x = rng.standard_normal(5)
    p1 = plan_for(fc.fun, (x,), emitter="plan")
    p2 = plan_for(fc.fun, (x,), emitter="codegen")
    st = plan_cache_stats()
    assert st["entries"] == 2 and st["misses"] == 2
    assert isinstance(p1, Plan) and isinstance(p2, CodegenPlan)
    assert plan_for(fc.fun, (x,), emitter="codegen") is p2  # cached repeat
    np.testing.assert_array_equal(p1.run((x,))[0], p2.run((x,))[0])
    assert set(st["emitters"]) >= {"plan", "codegen"}


def test_unknown_emitter_raises_listing_the_registered_set():
    fc = _sum_kernel()
    with pytest.raises(ExecError, match="unknown plan emitter"):
        plan_for(fc.fun, (np.ones(4),), emitter="llvm")


def test_clear_plan_cache_resets_emitter_stats():
    fc = _sum_kernel()
    fc(np.ones(4), backend="codegen")
    assert plan_cache_stats()["emitters"]
    clear_plan_cache()
    assert plan_cache_stats()["emitters"] == {}


# ---------------------------------------------------------------------------
# REPRO_CODEGEN_DUMP
# ---------------------------------------------------------------------------


def test_codegen_dump_writes_generated_source(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN_DUMP", str(tmp_path))
    fc = _sum_kernel()
    generic = compile_codegen(fc.fun)
    spec = compile_codegen(fc.fun, (np.ones(4),))
    files = sorted(os.listdir(tmp_path))
    assert len(files) == 2
    assert any("_generic_" in f for f in files)
    assert any("_spec_" in f for f in files)
    for f, plan in zip(files, (generic, spec)):
        text = (tmp_path / f).read_text()
        assert "def _plan_main(" in text
        assert plan.source in text


# ---------------------------------------------------------------------------
# Shard chunks on codegen
# ---------------------------------------------------------------------------


def test_shard_chunks_run_codegen_compiled(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
    monkeypatch.setenv("REPRO_SHARD_MIN_CHUNK", "4")
    monkeypatch.setenv("REPRO_SHARD_MAX_TASKS", "4")
    monkeypatch.setenv("REPRO_SHARD_EMITTER", "codegen")

    def f(v):
        return rp.map(lambda x: rp.tanh(x) * 2.0, v)

    fc = rp.compile(rp.trace_like(f, (np.ones(8),)))
    clear_plan_cache()
    xs = rng.standard_normal(11)  # chunk extents 5 and 6
    r_shard = fc(xs, backend="shard")
    np.testing.assert_array_equal(np.asarray(r_shard),
                                  np.asarray(fc(xs, backend="plan")))
    em = plan_cache_stats()["emitters"]
    assert "codegen" in em and em["codegen"]["code_objects"] >= 1


def test_shard_emitter_knob_rejects_unknown_values(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
    monkeypatch.setenv("REPRO_SHARD_MIN_CHUNK", "4")
    monkeypatch.setenv("REPRO_SHARD_EMITTER", "llvm")

    def f(v):
        return rp.map(lambda x: x * 2.0, v)

    fc = rp.compile(rp.trace_like(f, (np.ones(8),)))
    with pytest.raises(ReproError, match="REPRO_SHARD_EMITTER"):
        fc(rng.standard_normal(11), backend="shard")
