"""Two-tier plan cache: tier-1 shape-sweep behaviour, tier-2 promotion and
bitwise generic/specialised parity (including on the shard chunk path),
multi-thread hammer under the now-locked cache, the ``BoundedLRU`` stored-
``None`` regression, and the registry-level default backend."""
import threading

import numpy as np
import pytest

import repro as rp
from helpers import run_both
from repro.exec.plan import (
    clear_plan_cache,
    compile_plan,
    plan_cache_stats,
    plan_for,
)
from repro.exec.registry import default_backend
from repro.util import BoundedLRU, ExecError, ReproError

rng = np.random.default_rng(11)


def _sum_kernel():
    def f(v):
        return rp.sum(rp.map(lambda x: rp.sin(x) * x, v)) + rp.astype(
            rp.size(v), rp.F64
        )

    return rp.compile(rp.trace_like(f, (np.ones(4),)))


# ---------------------------------------------------------------------------
# Tier 1: generic lowerings are per rank/dtype signature, not per shape
# ---------------------------------------------------------------------------


def test_shape_sweep_one_generic_lowering_per_signature():
    fc = _sum_kernel()
    clear_plan_cache()
    sizes = (3, 4, 5, 6, 7, 8)  # >= 5 distinct concrete signatures
    for n in sizes:
        x = rng.standard_normal(n)
        np.testing.assert_allclose(
            fc(x, backend="plan"), fc(x, backend="ref"), rtol=1e-12, atol=1e-12
        )
    st = plan_cache_stats()
    assert st["misses"] == 1, f"sweep re-lowered generic plans: {st}"
    assert st["hits"] + st["specialized_hits"] == len(sizes) - 1
    assert st["entries"] == 1
    # A different dtype is a different rank/dtype signature: one more miss,
    # and still only one regardless of how many float32 extents follow.
    for n in (3, 4, 5):
        fc(rng.standard_normal(n).astype(np.float32), backend="plan")
    st2 = plan_cache_stats()
    assert st2["misses"] == 2, st2


def test_sweep_hits_grow_and_misses_stay_flat_on_derivatives():
    fc = _sum_kernel()
    g = rp.grad(fc)
    clear_plan_cache()
    for n in (4, 6, 8, 10, 12):
        x = rng.standard_normal(n)
        np.testing.assert_allclose(
            g(x, backend="plan"), g(x, backend="ref"), rtol=1e-10, atol=1e-10
        )
    st = plan_cache_stats()
    assert st["misses"] == 1, st  # one derivative Fun, one generic lowering
    assert st["hits"] + st["specialized_hits"] == 4


# ---------------------------------------------------------------------------
# Tier 2: promotion + bitwise agreement with the generic plan
# ---------------------------------------------------------------------------


def test_promotion_after_n_hits_and_results_stay_identical(monkeypatch):
    monkeypatch.setenv("REPRO_PLAN_SPECIALIZE", "1")
    monkeypatch.setenv("REPRO_PLAN_SPECIALIZE_AFTER", "2")
    fc = _sum_kernel()
    clear_plan_cache()
    x = rng.standard_normal(6)
    results = [np.asarray(fc(x, backend="plan")) for _ in range(5)]
    st = plan_cache_stats()
    assert st["misses"] == 1
    assert st["promotions"] == 1  # promoted on the 2nd generic hit
    assert st["specialized_hits"] == 2  # calls 4 and 5
    assert st["specialized_entries"] == 1
    for r in results[1:]:  # bitwise across the generic->specialised switch
        np.testing.assert_array_equal(results[0], r)


def test_specialization_can_be_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_PLAN_SPECIALIZE", "0")
    fc = _sum_kernel()
    clear_plan_cache()
    x = rng.standard_normal(6)
    for _ in range(6):
        fc(x, backend="plan")
    st = plan_cache_stats()
    assert st["promotions"] == 0 and st["specialized_entries"] == 0
    assert st["hits"] == 5


#: Programs covering every construct the specialised lowering touches (Size
#: folds, iota prebuild, constant extents, extent-picked reduce strategies)
#: plus control flow / accumulators the static inference must walk soundly.
_BATTERY = [
    ("size_iota_replicate", lambda v: rp.sum(
        rp.map(lambda i: rp.astype(i, rp.F64), rp.iota(rp.size(v)))
    ) * rp.sum(v), (np.ones(5),), (rng.standard_normal(7),)),
    ("reduce_nonempty", lambda v: rp.sum(v) + rp.reduce(
        lambda a, b: rp.maximum(a, b), -1.0e9, v
    ), (np.ones(6),), (rng.standard_normal(9),)),
    ("reduce_empty", lambda v: rp.sum(v), (np.zeros(0),), (np.zeros(0),)),
    ("reduce_one", lambda v: rp.sum(v) * 3.0, (np.ones(1),), (rng.standard_normal(1),)),
    ("scan_hist", lambda inds, vals: rp.sum(
        rp.scan(lambda a, b: a + b, 0.0, vals)
    ) + rp.sum(rp.reduce_by_index(4, lambda a, b: a + b, 0.0, inds, vals)),
     (np.array([0, 1, 2]), np.ones(3)),
     (np.array([3, 1, -1, 2, 0]), rng.standard_normal(5))),
    ("loop_while_if", lambda x, v: rp.cond(
        x > 0.0,
        lambda: rp.fori_loop(3, lambda i, a: a + rp.sum(v), x),
        lambda: rp.while_loop(lambda a: a < 4.0, lambda a: a + 1.0, x),
    ), (0.5, np.ones(4)), (-2.5, rng.standard_normal(6))),
    ("update_scatter_concat", lambda v, inds: rp.sum(
        rp.concat(rp.update(v, 1, 9.0), rp.reverse(rp.scatter(rp.zeros_like(v), inds, v)))
    ), (np.ones(4), np.array([0, 2, 1, 3])),
     (rng.standard_normal(4), np.array([3, 0, 2, 1]))),
    ("nested_map_redomap", lambda m: rp.map(
        lambda r: rp.sum(rp.map(lambda x: rp.exp(x) * x, r)), m
    ), (np.ones((3, 4)),), (rng.standard_normal((5, 2)),)),
]


@pytest.mark.parametrize("name,f,ex,args", _BATTERY, ids=[b[0] for b in _BATTERY])
def test_specialized_generic_bitwise_parity_battery(name, f, ex, args):
    fc = rp.compile(rp.trace_like(f, ex))
    run_both(fc, *args)  # ref/vec/plan/shard agreement on these programs
    fun = fc.fun
    generic = compile_plan(fun)
    spec = compile_plan(fun, args)
    rg = generic.run(tuple(args))
    rs = spec.run(tuple(args))
    assert len(rg) == len(rs)
    for a, b in zip(rg, rs):
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b))


def test_specialized_plan_rejects_other_shapes_loudly():
    """A specialised plan run outside its signature must raise, not fold its
    baked constants into silently wrong numbers."""
    fc = _sum_kernel()
    spec = compile_plan(fc.fun, (np.ones(4),))
    np.testing.assert_allclose(
        np.asarray(spec.run((np.arange(4.0),))[0]),
        np.asarray(fc(np.arange(4.0), backend="ref")),
    )
    with pytest.raises(ExecError, match="specialised for argument 0"):
        spec.run((np.ones(7),))
    with pytest.raises(ExecError, match="batched flags"):
        spec.run_batched((np.ones((2, 4)),), (True,), 2)


def test_specialized_batched_plans_bitwise(monkeypatch):
    monkeypatch.setenv("REPRO_PLAN_SPECIALIZE_AFTER", "1")

    def f(m):
        return rp.map(lambda r: rp.sum(rp.map(lambda x: rp.tanh(x * x), r)), m)

    fc = rp.compile(rp.trace_like(f, (np.ones((3, 4)),)))
    j = rp.jacobian(fc)
    x = rng.standard_normal((3, 4))
    clear_plan_cache()
    ref = j(x, backend="ref")
    first = j(x, backend="plan")  # generic plans
    for _ in range(3):  # later calls ride promoted specialised plans
        np.testing.assert_array_equal(first, j(x, backend="plan"))
    np.testing.assert_allclose(first, ref, rtol=1e-10, atol=1e-10)
    assert plan_cache_stats()["promotions"] >= 1


# ---------------------------------------------------------------------------
# Shard integration: chunk plans ride tier 1 (and specialise per extent)
# ---------------------------------------------------------------------------


def test_shard_chunk_plans_share_one_generic_lowering(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
    monkeypatch.setenv("REPRO_SHARD_MIN_CHUNK", "4")
    monkeypatch.setenv("REPRO_SHARD_MAX_TASKS", "4")

    def f(v):
        return rp.map(lambda x: rp.tanh(x) * 2.0, v)

    fc = rp.compile(rp.trace_like(f, (np.ones(8),)))
    clear_plan_cache()
    xs = rng.standard_normal(11)  # chunk extents 5 and 6 — distinct shapes
    np.testing.assert_array_equal(
        fc(xs, backend="shard"), np.asarray(fc(xs, backend="plan"))
    )
    st = plan_cache_stats()
    shard_misses = st["misses"]
    # A different total extent (different chunk extents again) must not
    # re-lower the chunk plan: tier 1 keys on rank/dtype only.
    xs2 = rng.standard_normal(13)
    np.testing.assert_array_equal(
        fc(xs2, backend="shard"), np.asarray(fc(xs2, backend="plan"))
    )
    assert plan_cache_stats()["misses"] == shard_misses


def test_shard_thread_mode_parity_under_locked_cache(monkeypatch):
    """Concurrent shard calls resolve plans from pool workers; under the
    locked cache the stats stay exact and results stay correct."""
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
    monkeypatch.setenv("REPRO_SHARD_MODE", "thread")
    monkeypatch.setenv("REPRO_SHARD_MIN_CHUNK", "8")
    monkeypatch.setenv("REPRO_SHARD_MAX_TASKS", "4")

    def f(v):
        return rp.sum(rp.map(lambda x: rp.exp(x) * x, v))

    fc = rp.compile(rp.trace_like(f, (np.ones(8),)))
    xs = {n: rng.standard_normal(n) for n in (33, 47, 61)}
    # Chunking is worker-count-independent, so concurrent shard results must
    # be *bitwise* equal to a quiet shard run (they may differ from the flat
    # plan reduce in the last ulp — different partial association order).
    expected = {n: float(np.asarray(fc(x, backend="shard"))) for n, x in xs.items()}
    for n, x in xs.items():
        np.testing.assert_allclose(
            expected[n], np.asarray(fc(x, backend="plan")), rtol=1e-12
        )
    clear_plan_cache()
    errors = []
    barrier = threading.Barrier(4)

    def worker(t):
        try:
            barrier.wait()
            for i in range(12):
                n = sorted(xs)[(t + i) % len(xs)]
                got = float(np.asarray(fc(xs[n], backend="shard")))
                if got != expected[n]:  # chunking is worker-count-independent
                    errors.append((t, i, n, got, expected[n]))
        except Exception as e:  # pragma: no cover - surfaced by the assert
            errors.append(repr(e))

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    assert not errors, errors[:3]


def test_plan_cache_thread_hammer():
    """8 threads x 40 calls racing one cache: with the lock, every call is
    accounted for exactly once and the sweep still lowers one generic plan."""
    fc = _sum_kernel()
    fun = fc.fun
    sizes = (3, 4, 5, 6, 7, 8)
    xs = {n: np.arange(float(n)) for n in sizes}
    expected = {n: float(np.asarray(fc(xs[n], backend="ref"))) for n in sizes}
    clear_plan_cache()
    nthreads, niter = 8, 40
    errors = []
    barrier = threading.Barrier(nthreads)

    def worker(t):
        try:
            barrier.wait()
            for i in range(niter):
                n = sizes[(t + i) % len(sizes)]
                (r,) = plan_for(fun, (xs[n],)).run((xs[n],))
                if not np.isclose(float(np.asarray(r)), expected[n]):
                    errors.append((t, i, n))
        except Exception as e:  # pragma: no cover - surfaced by the assert
            errors.append(repr(e))

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(nthreads)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    assert not errors, errors[:3]
    st = plan_cache_stats()
    total = nthreads * niter
    assert st["hits"] + st["misses"] + st["specialized_hits"] == total, st
    assert st["misses"] == 1, st  # one rank/dtype signature -> one lowering


# ---------------------------------------------------------------------------
# BoundedLRU: a stored None is a hit, not a miss (regression)
# ---------------------------------------------------------------------------


def test_bounded_lru_stored_none_is_a_hit_and_refreshes():
    lru = BoundedLRU()
    miss = object()
    lru.put("a", None, 10)
    assert lru.get("a", miss) is None  # present, not the default
    lru.put("b", 1, 10)
    assert lru.get("a", miss) is None  # refreshes "a" as most-recent
    lru.put("c", 2, 2)  # capacity 2: evicts LRU "b", keeps refreshed "a"
    assert lru.get("a", miss) is None
    assert lru.get("b", miss) is miss
    assert lru.get("c", miss) == 2


def test_bounded_lru_default_is_returned_on_miss():
    lru = BoundedLRU()
    assert lru.get("nope") is None
    sentinel = object()
    assert lru.get("nope", sentinel) is sentinel


# ---------------------------------------------------------------------------
# Registry-level default backend (REPRO_BACKEND)
# ---------------------------------------------------------------------------


def test_default_backend_honours_env_and_validates(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert default_backend() == "plan"
    monkeypatch.setenv("REPRO_BACKEND", "vec")
    assert default_backend() == "vec"
    monkeypatch.setenv("REPRO_BACKEND", "not-a-backend")
    with pytest.raises(ReproError, match="registered backends"):
        default_backend()


def test_all_entry_points_share_the_default(monkeypatch):
    def f(v):
        return rp.sum(rp.map(lambda x: x * x, v))

    fc = rp.compile(rp.trace_like(f, (np.ones(3),)))
    x = np.arange(3.0)
    g = rp.grad(fc)
    h = rp.hessian_diag(fc)
    j = rp.jacobian(rp.compile(rp.trace_like(lambda v: rp.map(lambda a: a * a, v), (np.ones(3),))))
    monkeypatch.setenv("REPRO_BACKEND", "not-a-backend")
    for call in (lambda: fc(x), lambda: g(x), lambda: h(x), lambda: j(x)):
        with pytest.raises(ReproError, match="registered backends"):
            call()
    monkeypatch.setenv("REPRO_BACKEND", "ref")
    np.testing.assert_allclose(fc(x), 5.0)
    np.testing.assert_allclose(g(x), 2 * x)
    np.testing.assert_allclose(h(x), 2 * np.ones(3))
