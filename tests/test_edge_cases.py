"""Edge cases across the stack: empty arrays, singleton extents, degenerate
seeds, masked divergence, dtype preservation, deep nesting."""
import numpy as np
import pytest

import repro as rp
from helpers import check_grad, run_both


def test_singleton_map_and_reduce():
    f = rp.compile(rp.trace_like(lambda xs: rp.sum(rp.map(lambda x: x * 3.0, xs)), (np.ones(1),)))
    assert f(np.array([2.0])) == 6.0
    g = rp.grad(f)
    np.testing.assert_allclose(g(np.array([2.0])), [3.0])


def test_zero_seed_gives_zero_gradient():
    f = rp.compile(rp.trace_like(lambda xs: rp.sum(rp.map(lambda x: rp.exp(x), xs)), (np.ones(3),)))
    rev = rp.vjp(f)
    out = rev(np.ones(3), 0.0)
    np.testing.assert_allclose(out[1], np.zeros(3))


def test_grad_of_constant_output():
    f = rp.compile(rp.trace_like(lambda x: x * 0.0 + 1.0, (1.0,)))
    assert rp.grad(f)(5.0) == 0.0


def test_unused_parameter_zero_adjoint():
    f = rp.compile(rp.trace_like(lambda x, y: x * x, (1.0, 1.0)))
    gx, gy = rp.grad(f)(3.0, 7.0)
    assert gx == 6.0 and gy == 0.0


def test_deeply_nested_maps():
    def f(t):  # rank-3 sum-of-cubes
        return rp.sum(
            rp.map(
                lambda m: rp.sum(rp.map(lambda r: rp.sum(rp.map(lambda x: x**3.0, r)), m)),
                t,
            )
        )

    t = np.random.default_rng(0).standard_normal((2, 3, 4))
    check_grad(f, (t,), tol=1e-3)


def test_scalar_result_dtype_preserved_f32():
    f = rp.compile(rp.trace_like(lambda x: x * x, (np.float32(2.0),)))
    out = f(np.float32(3.0))
    assert out.dtype == np.float32


def test_bool_array_ops_both_backends():
    def f(xs):
        flags = rp.map(lambda x: (x > 0.0) & (x < 1.0), xs)
        return rp.sum(rp.map(lambda b: rp.where(b, 1.0, 0.0), flags))

    fc = rp.compile(rp.trace_like(f, (np.ones(3),)))
    out = run_both(fc, np.array([-1.0, 0.5, 2.0, 0.9]))
    assert out == 2.0


def test_update_row_of_matrix():
    def f(m, row):
        m2 = rp.update(m, 1, row)
        return rp.sum(rp.map(lambda r: rp.sum(r), m2))

    m = np.ones((3, 2))
    row = np.array([5.0, 6.0])
    fc = rp.compile(rp.trace_like(f, (m, row)))
    assert fc(m, row) == 2 + 11 + 2
    check_grad(f, (m, row))


def test_nested_loop_in_loop():
    def f(x):
        def outer(i, a):
            return rp.fori_loop(3, lambda j, b: b * x + 0.01, a)

        return rp.fori_loop(3, outer, 1.0)

    check_grad(f, (np.array(0.9),))


def test_while_loop_zero_iterations_grad():
    def f(x):
        v = rp.while_loop(lambda v: v < 0.0, lambda v: v * 2.0, x, bound=4)
        return v * v

    fc, g = check_grad(f, (np.array(3.0),))
    assert g(np.array(3.0)) == 6.0


def test_masked_log_in_untaken_branch():
    # log of negative values in inactive lanes must not poison results.
    def f(xs):
        return rp.sum(rp.map(lambda x: rp.cond(x > 0.0, lambda: rp.log(x), lambda: x), xs))

    fc = rp.compile(rp.trace_like(f, (np.ones(3),)))
    xs = np.array([2.0, -3.0, 0.5])
    out = run_both(fc, xs)
    assert np.isfinite(out)
    check_grad(f, (xs,))


def test_scatter_empty_indices():
    def f(xs, inds, vals):
        return rp.sum(rp.scatter(xs, inds, vals))

    fc = rp.compile(rp.trace_like(f, (np.ones(4), np.zeros(0, dtype=np.int64), np.zeros(0))))
    assert fc(np.ones(4), np.zeros(0, dtype=np.int64), np.zeros(0)) == 4.0


def test_hist_empty_input():
    def f(inds, vals):
        return rp.sum(rp.reduce_by_index(3, lambda a, b: a + b, 0.0, inds, vals))

    fc = rp.compile(rp.trace_like(f, (np.zeros(0, dtype=np.int64), np.zeros(0))))
    assert fc(np.zeros(0, dtype=np.int64), np.zeros(0)) == 0.0


def test_reduce_min_on_all_equal():
    xs = np.full(5, 2.0)
    f = rp.compile(rp.trace_like(lambda v: rp.min(v), (xs,)))
    g = rp.grad(f)(xs)
    assert g.sum() == 1.0  # exactly one winner even with ties


def test_pow_gradient_at_integer_exponent():
    check_grad(lambda x: x**3.0, (np.array(1.7),))


def test_negative_modulo_floor_semantics():
    f = rp.compile(rp.trace_like(lambda n: n % 4, (np.int64(-3),)))
    assert f(np.int64(-3)) == 1  # floor-mod, numpy semantics


def test_gather_grad_duplicated_indices():
    def f(tbl, inds):
        return rp.sum(rp.gather(tbl, inds))

    tbl = np.arange(3.0)
    inds = np.array([1, 1, 1, 0])
    fc = rp.compile(rp.trace_like(f, (tbl, inds)))
    g = rp.grad(fc, wrt=[0])(tbl, inds)
    np.testing.assert_allclose(g, [1.0, 3.0, 0.0])  # contributions accumulate


def test_second_order_nonuniform_hessian():
    # H of sum(exp(x)) is diag(exp(x)); hessian_diag must see it.
    f = rp.compile(rp.trace_like(lambda xs: rp.sum(rp.map(lambda x: rp.exp(x), xs)), (np.ones(3),)))
    x = np.array([0.1, -0.5, 1.2])
    np.testing.assert_allclose(rp.hessian_diag(f)(x), np.exp(x), rtol=1e-10)
