"""Reverse-mode AD of control flow: loops (checkpointing, strip-mining,
entry-mode), branches, while loops (bounds + inspector), second order."""
import numpy as np
import pytest

import repro as rp
from helpers import check_grad
from repro.util import ADError

rng = np.random.default_rng(5)


def test_loop_checkpointing_basic():
    def f(x):
        return rp.fori_loop(6, lambda i, a: rp.sin(a) * x, x)

    check_grad(f, (np.array(0.8),))


def test_loop_with_free_array():
    def f(xs):
        def step(i, acc):
            return acc * rp.sum(rp.map(lambda x: rp.sin(x * acc), xs)) + 0.1

        return rp.fori_loop(4, step, 1.0)

    check_grad(f, (rng.standard_normal(3) * 0.3,))


def test_loop_inside_map():
    def f(xs):
        return rp.sum(rp.map(lambda x: rp.fori_loop(5, lambda i, a: a * x + 0.1, 1.0), xs))

    check_grad(f, (rng.standard_normal(4) * 0.4,))


def test_loop_array_state():
    def f(xs):
        def step(i, arr):
            return rp.map(lambda v: v * xs[i % 3], arr)

        out = rp.fori_loop(4, step, xs)
        return rp.sum(out)

    check_grad(f, (rng.standard_normal(3),))


def test_loop_zero_iterations():
    def f(x):
        return rp.fori_loop(0, lambda i, a: a * x, x * 2.0)

    fc, g = check_grad(f, (np.array(1.5),))
    assert g(np.array(1.5)) == 2.0


def test_stripmine_equivalence():
    def make(sm):
        def f(xs):
            def step(i, a):
                return a * rp.sin(a + xs[i % 5])

            return rp.fori_loop(32, step, 1.0, stripmine=sm)

        return rp.compile(rp.trace_like(f, (np.ones(5),)))

    xs = rng.standard_normal(5)
    g0 = rp.grad(make(0))(xs)
    g4 = rp.grad(make(4))(xs)
    g8 = rp.grad(make(8))(xs)
    np.testing.assert_allclose(g0, g4, rtol=1e-10)
    np.testing.assert_allclose(g0, g8, rtol=1e-10)


def test_stripmine_reduces_checkpoint_memory():
    from repro.exec.cost import CostRecorder
    from repro.exec.interp import RefInterp

    def make(sm):
        def f(x):
            return rp.fori_loop(256, lambda i, a: rp.sin(a) * x, x, stripmine=sm)

        return rp.grad(rp.compile(rp.trace_like(f, (1.0,))))

    def peak(g):
        rec = CostRecorder()
        RefInterp(rec).run(g.adfun.fun, [0.8, 1.0])
        return rec.snapshot().peak_alloc

    p_plain = peak(make(0))
    p_sm = peak(make(16))
    assert p_plain >= 256
    assert p_sm < p_plain / 3  # ~ 16 + 16 vs 256 checkpoint slots


def test_checkpoint_entry_annotation():
    # A loop writing disjoint slots (no false dependencies): checkpoint="entry"
    # re-installs the final array; the gradient must match "iters" mode.
    def make(mode):
        def f(xs):
            def step(i, acc):
                return rp.update(acc, i, xs[i] * xs[i])

            out = rp.fori_loop(4, step, rp.zeros_like(xs), checkpoint=mode)
            return rp.sum(out)

        return rp.compile(rp.trace_like(f, (np.ones(4),)))

    xs = rng.standard_normal(4)
    g1 = rp.grad(make("iters"))(xs)
    g2 = rp.grad(make("entry"))(xs)
    np.testing.assert_allclose(g1, g2, rtol=1e-12)
    np.testing.assert_allclose(g1, 2 * xs, rtol=1e-12)


def test_if_branches():
    for x0 in (1.5, -1.5):
        check_grad(
            lambda x: rp.cond(x > 0.0, lambda: rp.exp(x), lambda: x * x - x),
            (np.array(x0),),
        )


def test_if_inside_map():
    def f(xs):
        return rp.sum(
            rp.map(lambda x: rp.cond(x > 0.0, lambda: rp.exp(x), lambda: x * x - x), xs)
        )

    check_grad(f, (rng.standard_normal(9),))


def test_if_with_free_array_in_one_branch():
    def f(xs, tbl):
        def per(x):
            return rp.cond(x > 0.0, lambda: tbl[0] * x, lambda: x)

        return rp.sum(rp.map(per, xs))

    check_grad(f, (rng.standard_normal(6), rng.standard_normal(2)))


def test_fig2_perfect_nest():
    """The paper's Fig. 2 program: map (\\c as -> if c ... else map (a*a))."""
    def f(cs, ass):
        def per(c, as_):
            return rp.cond(
                c > 0.0,
                lambda: rp.sum(rp.map(lambda a: a + 1.0, as_)),
                lambda: rp.sum(rp.map(lambda a: a * a, as_)),
            )

        return rp.sum(rp.map(per, cs, ass))

    check_grad(f, (rng.standard_normal(3), rng.standard_normal((3, 4))))


def test_while_with_bound():
    def f(x):
        v, s = rp.while_loop(
            lambda v, s: v < 10.0, lambda v, s: (v * 1.5, s + v), (x, 0.0), bound=32
        )
        return s

    check_grad(f, (np.array(0.7),))


def test_while_inspector_no_bound():
    def f(x):
        v, s = rp.while_loop(
            lambda v, s: v < 10.0, lambda v, s: (v * 1.5, s + v), (x, 0.0)
        )
        return s

    check_grad(f, (np.array(0.7),))


def test_second_order_hessian_diag():
    def cube(xs):
        return rp.sum(rp.map(lambda x: x * x * x, xs))

    f = rp.compile(rp.trace_like(cube, (np.ones(4),)))
    x = rng.standard_normal(4)
    np.testing.assert_allclose(rp.hessian_diag(f)(x), 6 * x, atol=1e-8)


def test_vjp_of_vjp_rejected():
    f = rp.compile(rp.trace_like(lambda xs: rp.sum(rp.map(lambda x: x * xs[0], xs)), (np.ones(3),)))
    g = rp.vjp(f)
    with pytest.raises(ADError):
        rp.vjp(g)
