"""Unit tests for the type universe."""
import numpy as np
import pytest

from repro.ir import types as T


def test_scalar_identities():
    assert T.F64 is T.Scalar.F64
    assert str(T.F32) == "f32"
    assert repr(T.ArrayType(T.F64, 2)) == "[][]f64"
    assert repr(T.AccType(T.F32, 1)) == "acc([]f32)"


def test_array_rank_positive():
    with pytest.raises(ValueError):
        T.ArrayType(T.F64, 0)


def test_is_float():
    assert T.is_float(T.F32) and T.is_float(T.F64)
    assert not T.is_float(T.I64) and not T.is_float(T.BOOL)
    assert T.is_float(T.ArrayType(T.F32, 3))
    assert not T.is_float(T.ArrayType(T.I32, 1))
    assert T.is_float(T.AccType(T.F64, 1))


def test_is_integral():
    assert T.is_integral(T.I32) and T.is_integral(T.I64)
    assert not T.is_integral(T.F64)
    assert T.is_integral(T.ArrayType(T.I64, 2))


def test_elem_and_rank():
    a = T.ArrayType(T.F64, 3)
    assert T.elem_type(a) is T.F64
    assert T.rank_of(a) == 3
    assert T.rank_of(T.F64) == 0
    assert T.with_rank(T.F64, 0) is T.F64
    assert T.with_rank(T.F64, 2) == a.__class__(T.F64, 2)


def test_np_dtype_roundtrip():
    for s in (T.F32, T.F64, T.I32, T.I64, T.BOOL):
        assert T.from_np_dtype(T.np_dtype(s)) is s


def test_from_np_dtype_widening():
    assert T.from_np_dtype(np.dtype(np.int16)) is T.I64
    assert T.from_np_dtype(np.dtype(np.float16)) is T.F64
    with pytest.raises(ValueError):
        T.from_np_dtype(np.dtype("complex128"))
