"""Plan backend: parity with the interpreters, batched multi-seed jacobians,
shape-specialised cache behaviour, and the compiled-path speedup."""
import numpy as np
import pytest

import repro as rp
from helpers import run_both
from repro.exec import values as exec_values
from repro.exec.plan import clear_plan_cache, plan_cache_stats
from repro.util import ADError, ExecError

rng = np.random.default_rng(7)


# ---------------------------------------------------------------------------
# Parity (run_both also covers "plan" suite-wide via helpers.BACKENDS)
# ---------------------------------------------------------------------------


def test_plan_parity_nested_control_flow():
    def f(m, ns):
        def row(r, n):
            s = rp.scan(lambda a, b: a + b, 0.0, r)
            t = rp.sum(rp.map(lambda x: rp.tanh(x), s))
            u = rp.fori_loop(n, lambda i, a: a * 0.9 + t, t)
            return rp.cond(u > 0.0, lambda: u, lambda: u * u)

        return rp.map(row, m, ns)

    fc = rp.compile(rp.trace_like(f, (np.ones((2, 3)), np.array([1, 2]))))
    run_both(fc, rng.standard_normal((4, 5)), np.array([0, 3, 1, 5]))


def test_plan_parity_hist_scatter_update():
    def f(inds, vals, dest):
        h = rp.reduce_by_index(4, lambda a, b: a + b, 0.0, inds, vals)
        s = rp.scatter(dest, inds, vals)
        u = rp.update(s, 0, 9.5)
        return h, u

    fc = rp.compile(
        rp.trace_like(f, (np.array([0, 1]), np.ones(2), np.zeros(6)))
    )
    run_both(
        fc, np.array([1, 3, 1, 7, -1, 0]), rng.standard_normal(6), np.zeros(6)
    )


def test_plan_parity_reverse_ad_with_accumulators():
    def f(xs, ys):
        return rp.sum(rp.map(lambda x, y: rp.exp(x) * y, xs, ys))

    fc = rp.compile(rp.trace_like(f, (np.ones(5), np.ones(5))))
    g = rp.grad(fc)
    xs, ys = rng.standard_normal(5), rng.standard_normal(5)
    for got in (g(xs, ys, backend="plan"),):
        ref = g(xs, ys, backend="ref")
        np.testing.assert_allclose(np.asarray(got), np.asarray(ref))


def test_plan_irregular_nested_parallelism_rejected():
    def f(ns):
        return rp.map(
            lambda n: rp.sum(rp.map(lambda i: rp.astype(i, rp.F64), rp.iota(n))), ns
        )

    fc = rp.compile(rp.trace_like(f, (np.array([1, 2]),)))
    with pytest.raises(ExecError):
        fc(np.array([1, 2, 3]), backend="plan")


# ---------------------------------------------------------------------------
# Batched multi-seed jacobian
# ---------------------------------------------------------------------------


def _matrix_to_vector():
    """A non-square case: (3,4) matrix input -> length-3 vector output."""

    def f(m):
        return rp.map(lambda r: rp.sum(rp.map(lambda x: rp.tanh(x * x), r)), m)

    return rp.compile(rp.trace_like(f, (np.ones((3, 4)),)))


@pytest.mark.parametrize("mode", ["fwd", "rev"])
def test_jacobian_batched_vs_looped_all_backends(mode):
    fc = _matrix_to_vector()
    x = rng.standard_normal((3, 4))
    j = rp.jacobian(fc, mode=mode)
    ref = j(x, backend="ref")  # ref always loops over seeds
    assert ref.shape == (3, 3, 4)
    for backend in ("vec", "plan"):
        looped = j(x, backend=backend, batched=False)
        batch = j(x, backend=backend, batched=True)
        np.testing.assert_allclose(looped, ref, rtol=1e-10, atol=1e-10)
        np.testing.assert_allclose(batch, ref, rtol=1e-10, atol=1e-10)


def test_jacobian_fwd_rev_parity_nonsquare():
    fc = _matrix_to_vector()
    x = rng.standard_normal((3, 4))
    jf = rp.jacobian(fc, mode="fwd")
    jr = rp.jacobian(fc, mode="rev")
    for backend in ("ref", "vec", "plan"):
        np.testing.assert_allclose(
            jf(x, backend=backend), jr(x, backend=backend), rtol=1e-9, atol=1e-9
        )


def test_jacobian_multidim_output_shape_and_values():
    # vector -> matrix: J has shape y.shape + x.shape = (2, 3, 4)
    def f(v):
        return rp.map(lambda a: rp.map(lambda b: a * b, v), v)

    fc = rp.compile(rp.trace_like(f, (np.ones(3),)))
    # f: R^3 -> R^{3x3}; check against the analytic Jacobian.
    x = rng.standard_normal(3)
    j = rp.jacobian(fc)
    J = j(x, backend="plan")
    assert J.shape == (3, 3, 3)
    expect = np.zeros((3, 3, 3))
    for i in range(3):
        for k in range(3):
            expect[i, k, i] += x[k]
            expect[i, k, k] += x[i]
    np.testing.assert_allclose(J, expect, rtol=1e-10, atol=1e-10)
    np.testing.assert_allclose(J, j(x, backend="ref"), rtol=1e-10, atol=1e-10)


def test_jacobian_batched_on_ref_fails_loudly():
    fc = _matrix_to_vector()
    with pytest.raises(ADError):
        rp.jacobian(fc)(np.ones((3, 4)), backend="ref", batched=True)


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------


def test_plan_cache_hit_skips_recompile():
    def f(v):
        return rp.map(lambda x: rp.sin(x) * 2.0, v)

    fc = rp.compile(rp.trace_like(f, (np.ones(4),)))
    clear_plan_cache()
    x = rng.standard_normal(4)
    fc(x, backend="plan")
    s1 = plan_cache_stats()
    assert s1["misses"] >= 1 and s1["hits"] == 0
    fc(x, backend="plan")
    fc(x, backend="plan")
    s2 = plan_cache_stats()
    assert s2["misses"] == s1["misses"], "repeat same-shape call re-lowered a plan"
    assert s2["hits"] == s1["hits"] + 2
    # A new shape of the same rank/dtype signature hits the *generic* tier
    # now — no re-lowering (the tier-1 point of the two-tier cache).
    fc(rng.standard_normal(9), backend="plan")
    s3 = plan_cache_stats()
    assert s3["misses"] == s2["misses"], "new extent re-lowered a generic plan"
    assert s3["hits"] + s3["specialized_hits"] == s2["hits"] + s2["specialized_hits"] + 1


def test_plan_cache_counts_jacobian_reuse():
    fc = _matrix_to_vector()
    j = rp.jacobian(fc)
    x = rng.standard_normal((3, 4))
    clear_plan_cache()
    j(x, backend="plan")
    misses_first = plan_cache_stats()["misses"]
    j(x, backend="plan")
    j(x, backend="plan")
    s = plan_cache_stats()
    assert s["misses"] == misses_first, "jacobian re-lowered plans on repeat calls"
    assert s["hits"] >= 2 * 2  # primal + derivative plan per call


# ---------------------------------------------------------------------------
# While-loop fuel (shared, configurable constant)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["ref", "vec", "plan"])
def test_while_fuel_configurable_and_reported(backend, monkeypatch):
    def f(x):
        return rp.while_loop(lambda v: v < 1.0e9, lambda v: v + 1.0, x)

    fc = rp.compile(rp.trace_like(f, (0.0,)))
    monkeypatch.setattr(exec_values, "WHILE_FUEL", 25)
    with pytest.raises(ExecError, match=r"25 iterations"):
        fc(0.0, backend=backend)


# ---------------------------------------------------------------------------
# Compiled-path speedup (acceptance: >= 3x on a GMM-sized jacobian)
# ---------------------------------------------------------------------------


def _median_time(f, repeats=3):
    import time

    ts = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        f()
        ts.append(time.perf_counter() - t0)
    return float(np.median(ts))


def test_batched_plan_jacobian_speedup_over_looped_vec():
    # GMM-sized: 64-dimensional input, O(n^2) work per evaluation.
    n = 64

    def f(v):
        return rp.map(lambda a: rp.sum(rp.map(lambda b: rp.tanh(a * b), v)), v)

    fc = rp.compile(rp.trace_like(f, (np.ones(n),)))
    j = rp.jacobian(fc, mode="fwd")
    x = rng.standard_normal(n)
    # Warm up: lower plans, and check the two paths agree before timing.
    np.testing.assert_allclose(
        j(x, backend="plan", batched=True),
        j(x, backend="vec", batched=False),
        rtol=1e-9,
        atol=1e-9,
    )
    t_loop = _median_time(lambda: j(x, backend="vec", batched=False))
    t_plan = _median_time(lambda: j(x, backend="plan", batched=True))
    speedup = t_loop / t_plan
    print(
        f"\njacobian n={n}: looped-vec {t_loop*1e3:.1f} ms, "
        f"batched-plan {t_plan*1e3:.1f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= 3.0, f"batched plan jacobian only {speedup:.2f}x faster"


# ---------------------------------------------------------------------------
# Scalar-run fusion and cache bounding (PR 2)
# ---------------------------------------------------------------------------


def test_plan_fuses_scalar_runs_and_counts_them():
    def f(x, y):
        a = x * 2.0
        b = rp.sin(a) + y
        c = rp.where(b > 0.0, b, a)
        return c * c + 1.0

    fun = rp.trace_like(f, (1.0, 1.0))
    clear_plan_cache()
    fc = rp.compile(fun)
    out = fc(0.3, -0.2, backend="plan")
    np.testing.assert_allclose(out, fc(0.3, -0.2, backend="ref"))
    st = plan_cache_stats()
    assert st["fused_stms"] >= 2, st
    clear_plan_cache()


def test_plan_fused_runs_inside_map_lambdas():
    def f(xs):
        return rp.map(lambda x: rp.tanh(x * 2.0 + 1.0) * x, xs)

    fun = rp.trace_like(f, (np.ones(8),))
    clear_plan_cache()
    fc = rp.compile(fun)
    xs = rng.standard_normal(8)
    run_both(fc, xs)
    assert plan_cache_stats()["fused_stms"] > 0
    clear_plan_cache()


def _distinct_funs(k):
    """k structurally distinct compiled functions (distinct cache keys —
    one generic tier-1 entry each; extents never make new entries now)."""
    funs = []
    for i in range(k):
        c = float(i + 2)
        funs.append(rp.compile(rp.trace_like(lambda xs, _c=c: rp.sum(xs) * _c, (np.ones(4),))))
    return funs


def test_plan_cache_lru_eviction(monkeypatch):
    monkeypatch.setenv("REPRO_PLAN_CACHE_SIZE", "2")
    clear_plan_cache()
    funs = _distinct_funs(4)  # four distinct generic entries
    for fc in funs:
        fc(np.ones(3), backend="plan")
    st = plan_cache_stats()
    assert st["entries"] <= 2
    assert st["evictions"] >= 2
    # Evicted functions re-lower on demand and still run correctly.
    np.testing.assert_allclose(funs[0](np.ones(3), backend="plan"), 6.0)
    clear_plan_cache()


def test_plan_cache_lru_keeps_recently_used(monkeypatch):
    monkeypatch.setenv("REPRO_PLAN_CACHE_SIZE", "2")
    clear_plan_cache()
    f3, f4, f5 = _distinct_funs(3)
    f3(np.ones(3), backend="plan")  # miss: fun 3
    f4(np.ones(3), backend="plan")  # miss: fun 4
    f3(np.ones(3), backend="plan")  # hit: fun 3 -> most recent
    f5(np.ones(3), backend="plan")  # miss: evicts fun 4, not fun 3
    s = plan_cache_stats()
    before = s["hits"] + s["specialized_hits"]
    f3(np.ones(3), backend="plan")  # still cached
    s2 = plan_cache_stats()
    assert s2["hits"] + s2["specialized_hits"] == before + 1
    assert s2["misses"] == s["misses"]
    clear_plan_cache()
