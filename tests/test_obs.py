"""The unified observability layer (``repro.obs``).

Covers the PR 8 acceptance surface: span nesting/balance (including the
exception path), Chrome-trace export via ``REPRO_TRACE``, the per-
instruction ``"profile"`` emitter (bitwise parity with ``plan`` on the
fuzz corpus, report coverage on the GMM gradient), the metrics registry's
snapshot/delta/reset lifecycle, and the tracing-off overhead guard.
"""
import json
import time

import numpy as np
import pytest

import repro as rp
from repro import obs
from repro.exec.plan import (
    PLAN_STATS,
    clear_plan_cache,
    plan_cache_stats,
    reset_plan_cache_stats,
)
from repro.obs import metrics, tracing
from test_fuzz_programs import _gen_program


@pytest.fixture(autouse=True)
def _clean_tracer(monkeypatch):
    """Every test starts with tracing off and no stale REPRO_* knobs."""
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    tracing.disable()
    yield
    tracing.disable()


def _sum_sq(xs):
    return rp.reduce(lambda a, b: a + b, 0.0, rp.map(lambda v: v * v, xs))


def _balance_check(evs):
    """Per-thread B/E balance with LIFO nesting."""
    stacks = {}
    for ev in evs:
        key = (ev["pid"], ev["tid"])
        if ev["ph"] == "B":
            stacks.setdefault(key, []).append(ev["name"])
        elif ev["ph"] == "E":
            assert stacks.get(key), f"E without B: {ev['name']}"
            assert stacks[key].pop() == ev["name"]
    assert all(not s for s in stacks.values()), f"unclosed spans: {stacks}"


# ---------------------------------------------------------------------------
# Tracing: spans, nesting, export
# ---------------------------------------------------------------------------


def test_span_noop_when_off():
    assert tracing.active() is None
    sp = tracing.span("anything")
    assert sp is tracing.span("other")  # the shared no-op singleton
    with sp:
        pass
    assert tracing.events() == []
    assert tracing.phase_totals() == {}


def test_spans_nest_and_balance():
    tracing.enable()
    with tracing.span("outer", cat="t"):
        with tracing.span("inner", cat="t", k=1):
            pass
        with tracing.span("inner", cat="t", k=2):
            pass
    evs = tracing.events()
    names = [(e["ph"], e["name"]) for e in evs]
    assert names == [
        ("B", "outer"),
        ("B", "inner"),
        ("E", "inner"),
        ("B", "inner"),
        ("E", "inner"),
        ("E", "outer"),
    ]
    _balance_check(evs)
    totals = tracing.phase_totals()
    assert totals["outer"]["count"] == 1
    assert totals["inner"]["count"] == 2
    assert totals["outer"]["seconds"] >= totals["inner"]["seconds"]


def test_spans_close_on_exception():
    tracing.enable()
    with pytest.raises(ValueError):
        with tracing.span("outer"):
            with tracing.span("inner"):
                raise ValueError("boom")
    evs = tracing.events()
    assert [(e["ph"], e["name"]) for e in evs] == [
        ("B", "outer"),
        ("B", "inner"),
        ("E", "inner"),
        ("E", "outer"),
    ]
    _balance_check(evs)


def test_events_repair_open_spans():
    tracing.enable()
    sp = tracing.span("open")
    sp.__enter__()
    evs = tracing.events()  # mid-span export: synthetic E appended
    _balance_check(evs)
    sp.__exit__(None, None, None)


def test_repro_trace_exports_chrome_json(tmp_path, monkeypatch):
    out = tmp_path / "trace.json"
    monkeypatch.setenv("REPRO_TRACE", str(out))
    xs = np.linspace(0.0, 1.0, 32)
    fun = rp.trace_like(_sum_sq, (xs,), name="obs_trace_demo")
    clear_plan_cache()
    fc = rp.compile(fun)
    fc(xs)
    path = tracing.export()
    assert path == str(out)
    payload = json.loads(out.read_text())
    evs = payload["traceEvents"]
    _balance_check(evs)
    names = {e["name"] for e in evs}
    # the full pipeline shows up: API call, lowering, emission, execution
    assert {"call", "lower", "emit", "execute"} <= names
    ex = next(e for e in evs if e["name"] == "execute" and e["ph"] == "B")
    assert ex["args"]["fun"] == "obs_trace_demo"


def test_trace_includes_shard_chunk_spans(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
    monkeypatch.setenv("REPRO_SHARD_MIN_CHUNK", "8")
    xs = np.linspace(0.0, 1.0, 64)
    fc = rp.compile(rp.trace_like(_sum_sq, (xs,), name="obs_shard_demo"))
    tracing.enable()
    fc(xs, backend="shard")
    evs = tracing.events()
    _balance_check(evs)
    chunks = [e for e in evs if e["ph"] == "B" and e["name"] == "shard:chunk"]
    assert len(chunks) >= 2
    for ev in chunks:
        assert ev["cat"] == "shard"
        assert ev["args"]["mode"] == "thread"
        assert ev["args"]["extent"] >= 1
        assert "worker" in ev["args"]
    # distinct worker threads carried distinct tids
    assert len({e["tid"] for e in chunks}) >= 1


def test_tracing_under_codegen_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "codegen")
    xs = np.linspace(-1.0, 1.0, 16)
    fc = rp.compile(rp.trace_like(_sum_sq, (xs,), name="obs_cg_demo"))
    clear_plan_cache()
    tracing.enable()
    got = fc(xs)
    assert np.allclose(got, np.sum(xs * xs))
    names = {e["name"] for e in tracing.events()}
    assert {"call", "execute"} <= names
    ex = next(
        e
        for e in tracing.events()
        if e["name"] == "execute" and e["ph"] == "B"
    )
    assert ex["args"]["emitter"] == "codegen"


def test_collecting_restores_off_state():
    assert tracing.active() is None
    with tracing.collecting():
        assert tracing.active() is not None
        with tracing.span("x"):
            pass
        assert tracing.phase_totals()["x"]["count"] == 1
    assert tracing.active() is None


# ---------------------------------------------------------------------------
# Profile emitter
# ---------------------------------------------------------------------------


def test_profile_emitter_bitwise_identical_on_fuzz_corpus(monkeypatch):
    from repro.obs import profiler

    profiler.reset_profile()
    for seed in (0, 1, 7, 23, 101, 4096):
        xs = np.random.default_rng(seed).standard_normal(7) * 0.8
        fun = rp.trace_like(_gen_program(seed), (xs,), name=f"fuzz{seed}")
        fc = rp.compile(fun)
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        ref = fc(xs)
        monkeypatch.setenv("REPRO_PROFILE", "1")
        got = fc(xs)
        assert np.array_equal(np.asarray(ref), np.asarray(got)), seed
    summary = profiler.profile_summary()
    assert summary["calls"] > 0 and summary["seconds"] >= 0.0


def test_profile_report_gmm_gradient(monkeypatch):
    from repro.apps import datagen, gmm
    from repro.obs import profiler

    monkeypatch.setenv("REPRO_PROFILE", "1")
    n, d, K = 256, 8, 8
    args = datagen.gmm_instance(n, d, K)[:4]
    fc = rp.compile(gmm.build_ir(n, d, K))
    g = rp.grad(fc, wrt=[0, 1, 2])
    g(*args)  # warm the plan cache outside the measured window
    profiler.reset_profile()
    tracing.enable()
    for _ in range(3):
        g(*args)
    rep = profiler.profile_report(top_k=10)
    assert rep["entries"], "no instructions attributed"
    # >=90% of execute-span time lands on named plan instructions
    assert rep["coverage"] is not None and rep["coverage"] >= 0.9
    for e in rep["entries"]:
        assert e["label"] and e["kind"]
        assert e["measured_rank"] >= 1
        assert "est_work" in e and "est_rank" in e and "mispredicted" in e
    txt = profiler.format_profile_report(rep)
    assert "est work" in txt and "%" in txt


def test_write_profile_json(tmp_path, monkeypatch):
    from repro.obs import profiler

    xs = np.linspace(0.0, 1.0, 16)
    fc = rp.compile(rp.trace_like(_sum_sq, (xs,), name="obs_wp_demo"))
    monkeypatch.setenv("REPRO_PROFILE", "1")
    fc(xs)
    out = tmp_path / "profile.json"
    path = profiler.write_profile(str(out))
    rep = json.loads(out.read_text())
    assert path == str(out)
    assert rep["total_s"] >= 0.0 and isinstance(rep["entries"], list)


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


def test_metrics_snapshot_delta_roundtrip():
    metrics.inc("obs_test_counter", 2, stage="a")
    with metrics.timer("obs_test_timer"):
        time.sleep(0.001)
    metrics.set_gauge("obs_test_gauge", 42)
    before = obs.snapshot()
    metrics.inc("obs_test_counter", 3, stage="a")
    metrics.inc("obs_test_counter", 1, stage="b")
    with metrics.timer("obs_test_timer"):
        pass
    after = obs.snapshot()
    d = obs.delta(before, after)
    assert d["counters"]["obs_test_counter{stage=a}"] == 3
    assert d["counters"]["obs_test_counter{stage=b}"] == 1
    assert d["timers"]["obs_test_timer"]["count"] == 1
    # round-trip: applying the delta to `before` reproduces `after`
    k = "obs_test_counter{stage=a}"
    assert before["counters"][k] + d["counters"][k] == after["counters"][k]


def test_snapshot_covers_all_stats_surfaces():
    snap = obs.snapshot()
    for section in ("plan_cache", "shard", "fusion", "opt", "backend_calls"):
        assert section in snap, section
    assert snap["plan_cache"].keys() >= {"hits", "misses"}
    assert "passes" in snap["opt"] and "cache" in snap["opt"]


def test_reset_plan_cache_stats_keeps_plans():
    xs = np.linspace(0.0, 1.0, 8)
    fc = rp.compile(rp.trace_like(_sum_sq, (xs,), name="obs_reset_demo"))
    fc(xs)
    fc(xs)
    assert plan_cache_stats()["entries"] >= 1
    assert PLAN_STATS["hits"] + PLAN_STATS["misses"] > 0
    reset_plan_cache_stats()
    st = plan_cache_stats()
    assert st["hits"] == st["misses"] == 0
    assert st["emitters"] == {}
    assert st["entries"] >= 1  # counters cleared, cached plans kept


def test_reset_all_zeroes_every_surface():
    xs = np.linspace(0.0, 1.0, 8)
    fc = rp.compile(rp.trace_like(_sum_sq, (xs,), name="obs_resetall_demo"))
    fc(xs, backend="shard")
    metrics.inc("obs_resetall_counter")
    tracing.enable()
    with tracing.span("x"):
        pass
    obs.reset_all()
    snap = obs.snapshot()
    for k in ("hits", "misses", "specialized_hits", "promotions"):
        assert snap["plan_cache"][k] == 0
    for k in ("sharded_calls", "batched_calls", "fallback_calls", "chunks"):
        assert snap["shard"][k] == 0
    assert all(v == 0 for v in snap["backend_calls"].values())
    assert snap["counters"] == {}
    assert tracing.phase_totals() == {}


# ---------------------------------------------------------------------------
# Overhead guard: tracing off must stay <2% on a hot scalar loop
# ---------------------------------------------------------------------------


def test_tracing_off_overhead_under_two_percent():
    assert tracing.active() is None

    def loop(x):
        return rp.fori_loop(64, lambda i, a: a * 0.999 + x, x)

    fc = rp.compile(rp.trace_like(loop, (0.5,), name="obs_overhead_demo"))
    fc(0.5, backend="plan")  # warm the plan cache

    reps = 200
    t0 = time.perf_counter()
    for _ in range(reps):
        fc(0.5, backend="plan")
    per_call = (time.perf_counter() - t0) / reps

    # Cost of the instrumentation when off: one span() no-op resolution
    # (plus the kwargs dict) per instrumented site.  A plan-backend call
    # crosses two sites (api call + execute).
    n = 20000
    t0 = time.perf_counter()
    for _ in range(n):
        with tracing.span("x", cat="exec", fun="f", emitter="plan"):
            pass
    per_span = (time.perf_counter() - t0) / n

    sites_per_call = 2
    overhead = per_span * sites_per_call
    assert overhead < 0.02 * per_call, (
        f"tracing-off overhead {overhead * 1e6:.2f}us/call vs "
        f"call time {per_call * 1e6:.2f}us"
    )
