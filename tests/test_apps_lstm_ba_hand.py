"""Application-level integration tests: LSTM, BA, HAND."""
import numpy as np
import pytest

import repro as rp
from repro.apps import ba, datagen, hand, lstm
from repro.baselines import eager as eg


def test_lstm_loss_and_grads():
    xs, wx, wh, b, wy, h0, c0, tg = datagen.lstm_instance(3, 4, 5, 6, seed=5)
    n, bs, d = xs.shape
    h = wh.shape[1]
    fc = rp.compile(lstm.build_ir(n, bs, d, h))
    vn = lstm.loss_np(xs, wx, wh, b, wy, tg)
    assert np.allclose(fc(xs, wx, wh, b, wy, tg), vn)
    assert np.allclose(lstm.loss_eager(xs, wx, wh, b, wy, tg).data, vn)
    g = rp.grad(fc, wrt=[1, 2, 3, 4])
    ours = g(xs, wx, wh, b, wy, tg)
    manual = lstm.grad_manual(xs, wx, wh, b, wy, tg)
    for o, m in zip(ours, manual):
        np.testing.assert_allclose(o, m, atol=1e-7)
    egr = eg.grad(lambda a, b_, c_, d_: lstm.loss_eager(xs, a, b_, c_, d_, tg))(wx, wh, b, wy)
    for e, m in zip(egr, manual):
        np.testing.assert_allclose(e, m, atol=1e-7)


def test_lstm_training_decreases_loss():
    xs, wx, wh, b, wy, h0, c0, tg = datagen.lstm_instance(2, 3, 4, 5, seed=6)
    fc = rp.compile(lstm.build_ir(2, 3, 4, 5))
    g = rp.grad(fc, wrt=[1, 2, 3, 4])
    l0 = fc(xs, wx, wh, b, wy, tg)
    lr = 1e-3
    for _ in range(3):
        gw = g(xs, wx, wh, b, wy, tg)
        wx, wh, b, wy = (p - lr * d for p, d in zip((wx, wh, b, wy), gw))
    assert fc(xs, wx, wh, b, wy, tg) < l0


def test_ba_residuals_and_jacobian():
    cams, pts, ws, oc, op, feats = datagen.ba_instance(4, 10, 20, seed=6)
    gc, gp, gw = ba.gather_obs(cams, pts, ws, oc, op)
    fc = rp.compile(ba.build_ir(20))
    rn = ba.residuals_np(gc, gp, gw, feats)
    for a, b in zip(fc(gc, gp, gw, feats), rn):
        np.testing.assert_allclose(a, b, atol=1e-10)
    re = ba.residuals_eager(gc, gp, gw, feats)
    for a, b in zip(re, rn):
        np.testing.assert_allclose(a.data, b, atol=1e-10)
    # Sparse Jacobian via 2 seeded vjp passes == hand-enumerated Jacobian.
    jv = rp.vjp(fc, wrt=[0, 1, 2])
    Jm = ba.jacobian_manual(gc, gp, gw, feats)
    for comp in range(3):
        seeds = [np.zeros(20), np.zeros(20), np.zeros(20)]
        seeds[comp] = np.ones(20)
        out = jv(gc, gp, gw, feats, *seeds)
        Jrow = np.concatenate([out[3], out[4], out[5][:, None]], axis=1)
        np.testing.assert_allclose(Jrow, Jm[:, comp, :], rtol=2e-4, atol=1e-5)


def test_ba_jacobian_ad_batched_matches_looped_and_manual():
    """Both residual-component reverse passes in ONE call_batched pass
    (the batched multi-seed driver) must agree with the per-seed loop on
    every backend and with the hand-enumerated Jacobian blocks."""
    cams, pts, ws, oc, op, feats = datagen.ba_instance(4, 10, 20, seed=6)
    gc, gp, gw = ba.gather_obs(cams, pts, ws, oc, op)
    jv = rp.vjp(rp.compile(ba.build_ir(20)), wrt=[0, 1, 2])
    Jb_plan = ba.jacobian_ad(jv, gc, gp, gw, feats, backend="plan")
    Jb_vec = ba.jacobian_ad(jv, gc, gp, gw, feats, backend="vec")
    J_loop = ba.jacobian_ad(jv, gc, gp, gw, feats, backend="plan", batched=False)
    J_ref = ba.jacobian_ad(jv, gc, gp, gw, feats, backend="ref")  # loops on ref
    for other in (Jb_vec, J_loop, J_ref):
        for a, b in zip(Jb_plan, other):
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)
    Jm = ba.jacobian_manual(gc, gp, gw, feats)  # (n, 3, 15)
    np.testing.assert_allclose(Jb_plan[0], Jm[:, :2, :11], rtol=2e-4, atol=1e-5)
    np.testing.assert_allclose(Jb_plan[1], Jm[:, :2, 11:14], rtol=2e-4, atol=1e-5)
    np.testing.assert_allclose(Jb_plan[2], Jm[:, :2, 14], rtol=2e-4, atol=1e-5)


def test_hand_objective_and_grad():
    theta, base, wghts, tgts = datagen.hand_instance(4, 12, seed=7)
    fc = rp.compile(hand.build_ir(4, 12))
    vn = hand.objective_np(theta, base, wghts, tgts)
    assert np.allclose(fc(theta, base, wghts, tgts), vn)
    assert np.allclose(hand.objective_eager(theta, base, wghts, tgts).data, vn)
    g = rp.grad(fc, wrt=[0])
    ga = g(theta, base, wghts, tgts)
    eps = 1e-6
    fd = np.array(
        [
            (
                fc(theta + eps * np.eye(len(theta))[i], base, wghts, tgts)
                - fc(theta - eps * np.eye(len(theta))[i], base, wghts, tgts)
            )
            / (2 * eps)
            for i in range(len(theta))
        ]
    )
    np.testing.assert_allclose(ga, fd, atol=1e-4)


def test_hand_jacobian_fwd_mode():
    theta, base, wghts, tgts = datagen.hand_instance(3, 8, seed=8)
    fc = rp.compile(hand.build_ir(3, 8))
    fwd = rp.jvp(fc)
    Jm = hand.jacobian_manual(theta, base, wghts, tgts)
    # each jvp pass = one column of the (scalar-objective) J; here just one
    # direction since the objective is scalar: dL = J_theta · e_j
    for j in range(len(theta)):
        e = np.zeros(len(theta))
        e[j] = 1.0
        out = fwd(theta, base, wghts, tgts, e, np.zeros_like(base), np.zeros_like(wghts), np.zeros_like(tgts))
        dL = out[-1]
        # chain: dL = 2 rᵀ J e_j
        r = (hand._positions_np(theta, base, wghts) - tgts).reshape(-1)
        np.testing.assert_allclose(dL, 2 * r @ Jm[:, j], rtol=1e-5, atol=1e-6)


def test_hand_complicated_residuals_and_jacobian_blocks():
    """Table 1's HAND Comp. variant: dense pose block + sparse (block-
    diagonal) correspondence block, via seeded reverse passes."""
    import numpy as np
    theta, u, base, wghts, cands = hand.complicated_instance(4, 10, seed=3)
    fc = rp.compile(hand.build_ir_complicated(4, 10))
    for a, b in zip(fc(theta, u, base, wghts, cands),
                    hand.residuals_complicated_np(theta, u, base, wghts, cands)):
        np.testing.assert_allclose(a, b, atol=1e-12)
    jv = rp.vjp(fc, wrt=[0, 1])
    for c in range(3):
        seeds = [np.zeros(10)] * 3
        seeds = [s.copy() for s in seeds]
        seeds[c] = np.ones(10)
        out = jv(theta, u, base, wghts, cands, *seeds)
        du = out[4]
        # sparse block is exactly -cands[:, :, c] (block-diagonal in v)
        np.testing.assert_allclose(du, -cands[:, :, c], atol=1e-12)
