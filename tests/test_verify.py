"""Mutation corpus for the static verifier (ir/verify, exec/verify_plan).

Each test programmatically corrupts well-formed IR — the exact corruptions a
buggy rewrite pass could produce — and asserts the verifier rejects it with a
``VerifyError`` naming the pass and (where applicable) the offending
statement.  The last section runs the fuzz-program corpus end-to-end under
``REPRO_VERIFY=full`` on all four executors and checks the cached-plan /
counter behaviour of the hooks.
"""
import numpy as np
import pytest

import repro as rp
from repro.ir import (
    F64,
    I64,
    Fun,
    Lambda,
    Var,
    VerifyError,
    array,
    verify_fun,
    verify_mode,
    verify_stats,
)
from repro.ir.ast import (
    AtomExp,
    BinOp,
    Body,
    Const,
    Map,
    Loop,
    Reduce,
    Replicate,
    Scatter,
    Stm,
    UnOp,
    UpdAcc,
    WithAcc,
)
from repro.ir.schedule import Parallel
from repro.ir.types import AccType
from repro.ir.verify import VERIFY_STATS
from repro.exec.lower import ILoop, IRun, PlanIR, Ref, lower_fun
from repro.exec.plan import clear_plan_cache, plan_cache_stats, plan_for
from repro.exec.verify_plan import verify_codegen_source, verify_plan_ir
from helpers import run_both
from test_fuzz_programs import _gen_program

A = array(F64)
AI = array(I64)
ACC = AccType(F64, 1)


def _reject(fun, match, *, full=False, where="opt:evil"):
    with pytest.raises(VerifyError, match=match) as exc:
        verify_fun(fun, where=where, full=full)
    assert f"after pass {where!r}" in str(exc.value)
    return exc.value


# ---------------------------------------------------------------------------
# Layer 1: SSA / types / accumulator discipline / schedules
# ---------------------------------------------------------------------------


def test_use_before_def_rejected():
    x = Var("x", F64)
    y = Var("y", F64)
    z = Var("z", F64)
    body = Body(
        (Stm((z,), BinOp("add", y, y)), Stm((y,), BinOp("mul", x, x))),
        (z,),
    )
    err = _reject(Fun("f", (x,), body), "use of 'y' before its definition")
    # The error names the statement doing the premature read.
    assert "let (z)" in str(err)


def test_shadowing_rejected():
    xs = Var("xs", A)
    inner = Var("xs", F64)  # a rewrite reusing a live outer name
    ys = Var("ys", A)
    lam = Lambda((inner,), Body((), (inner,)))
    body = Body((Stm((ys,), Map(lam, (xs,))),), (ys,))
    _reject(Fun("f", (xs,), body), "shadows a definition live in an enclosing")


def test_type_wrong_rewrite_rejected():
    x = Var("x", F64)
    n = Var("n", I64)
    y = Var("y", F64)
    body = Body((Stm((y,), BinOp("add", x, n)),), (y,))
    _reject(Fun("f", (x, n), body), "element types differ")


def test_duplicated_accumulator_use_rejected():
    a = Var("a", A)
    p = Var("p", ACC)
    u1 = Var("u1", ACC)
    u2 = Var("u2", ACC)
    lam_body = Body(
        (
            Stm((u1,), UpdAcc(p, (Const(0, I64),), Const(1.0, F64))),
            Stm((u2,), UpdAcc(p, (Const(1, I64),), Const(2.0, F64))),
        ),
        (u2,),
    )
    a2 = Var("a2", A)
    body = Body((Stm((a2,), WithAcc((a,), Lambda((p,), lam_body))),), (a2,))
    _reject(Fun("f", (a,), body), "used more than once")


def test_acc_wrong_region_result_rejected():
    # Nested withacc whose lambda returns the *outer* region's accumulator
    # in the leading (own-region) result position — a §5.4 escape.
    a = Var("a", A)
    z = Var("z", A)
    pa = Var("pa", ACC)
    pz = Var("pz", ACC)
    z2 = Var("z2", A)
    sec = Var("sec", ACC)
    inner = Stm((z2, sec), WithAcc((z,), Lambda((pz,), Body((), (pa, pz)))))
    a2 = Var("a2", A)
    body = Body(
        (Stm((a2,), WithAcc((a,), Lambda((pa,), Body((inner,), (pa,))))),),
        (a2,),
    )
    _reject(
        Fun("f", (a, z), body),
        "must return this region's own accumulator",
    )


def test_acc_function_param_rejected():
    p = Var("p", ACC)
    fun = Fun("bad", (p,), Body((), (Const(1.0, F64),)))
    _reject(fun, "function parameters may not be accumulators")


def test_frozen_array_read_rejected():
    a = Var("a", A)
    pa = Var("pa", ACC)
    t = Var("t", A)
    u = Var("u", ACC)
    lam_body = Body(
        (
            Stm((t,), UnOp("neg", a)),  # read of `a` while its acc is live
            Stm((u,), UpdAcc(pa, (), t)),
        ),
        (u, t),
    )
    a2 = Var("a2", A)
    t2 = Var("t2", A)
    body = Body(
        (Stm((a2, t2), WithAcc((a,), Lambda((pa,), lam_body))),), (t2,)
    )
    _reject(Fun("f", (a,), body), "read while an accumulator view")


def test_loop_acc_not_threaded_rejected():
    # A loop-carried accumulator whose body returns a *different* region's
    # accumulator in its position.
    a = Var("a", A)
    b = Var("b", A)
    pa = Var("pa", ACC)
    pb = Var("pb", ACC)
    carried = Var("l", ACC)
    i = Var("i", I64)
    lout = Var("lout", ACC)
    loop = Stm(
        (lout,),
        Loop((carried,), (pb,), i, Const(2, I64), Body((), (pa,))),
    )
    b2 = Var("b2", A)
    inner = Stm((b2,), WithAcc((b,), Lambda((pb,), Body((loop,), (lout,)))))
    a2 = Var("a2", A)
    body = Body(
        (Stm((a2,), WithAcc((a,), Lambda((pa,), Body((inner,), (pa,))))),),
        (a2,),
    )
    _reject(Fun("f", (a, b), body), "not threaded linearly")


def test_racy_scatter_schedule_rejected():
    dest = Var("dest", A)
    inds = Var("inds", AI)
    vals = Var("vals", A)
    out = Var("out", A)
    body = Body(
        (Stm((out,), Scatter(dest, inds, vals, schedule=(Parallel(2),))),),
        (out,),
    )
    err = _reject(
        Fun("f", (dest, inds, vals), body), "scatter writes may collide"
    )
    assert "parallel(2)" in str(err)
    assert "let (out)" in str(err)


def test_scatter_replicated_indices_rejected_in_full():
    dest = Var("dest", A)
    vals = Var("vals", A)
    inds = Var("inds", AI)
    out = Var("out", A)
    body = Body(
        (
            Stm((inds,), Replicate(Const(4, I64), Const(0, I64))),
            Stm((out,), Scatter(dest, inds, vals)),
        ),
        (out,),
    )
    fun = Fun("f", (dest, vals), body)
    verify_fun(fun, where="opt:evil")  # boundary layers cannot see it
    _reject(fun, "replicate a single index", full=True)


def test_parallel_reduce_unrecognized_op_rejected():
    xs = Var("xs", A)
    pa = Var("pa", F64)
    pb = Var("pb", F64)
    r = Var("r", F64)
    s = Var("s", F64)
    lam = Lambda((pa, pb), Body((Stm((r,), BinOp("sub", pa, pb)),), (r,)))
    body = Body(
        (
            Stm(
                (s,),
                Reduce(lam, (Const(0.0, F64),), (xs,), schedule=(Parallel(2),)),
            ),
        ),
        (s,),
    )
    _reject(Fun("f", (xs,), body), "not a recognised associative")


def test_parallel_map_free_accumulator_rejected_in_full():
    # A parallel split whose lambda updates a free accumulator: every chunk
    # would race on the same underlying buffer.
    a = Var("a", A)
    xs = Var("xs", A)
    pa = Var("pa", ACC)
    x = Var("x", F64)
    u = Var("u", ACC)
    y = Var("y", F64)
    map_lam = Lambda(
        (x,),
        Body(
            (
                Stm((u,), UpdAcc(pa, (Const(0, I64),), x)),
                Stm((y,), BinOp("mul", x, x)),
            ),
            (y,),
        ),
    )
    ys = Var("ys", A)
    wa_body = Body(
        (Stm((ys,), Map(map_lam, (xs,), schedule=(Parallel(2),))),),
        (pa, ys),
    )
    a2 = Var("a2", A)
    ys2 = Var("ys2", A)
    body = Body(
        (Stm((a2, ys2), WithAcc((a,), Lambda((pa,), wa_body))),), (ys2,)
    )
    fun = Fun("f", (a, xs), body)
    _reject(fun, "free accumulator 'pa' threads through the split", full=True)


# ---------------------------------------------------------------------------
# Layer 2: plan-IR checker + codegen source sanity
# ---------------------------------------------------------------------------


def _lowered(prog, args, monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY", "off")  # lower without the hook…
    fun = rp.trace_like(prog, args)
    ir = lower_fun(fun)
    verify_plan_ir(ir)  # …then prove the pristine plan is green
    return ir


def _first_run(ir: PlanIR) -> IRun:
    for instr in ir.body.instrs:
        if isinstance(instr, IRun):
            return instr
    raise AssertionError("no fused run in lowered plan")


def test_plan_slot_double_assign_rejected(monkeypatch):
    ir = _lowered(lambda x: x * x + 1.0, (2.0,), monkeypatch)
    run = _first_run(ir)
    idx, _slot, name = run.exports[0]
    run.exports = ((idx, ir.param_slots[0], name),)  # clobber a live param
    with pytest.raises(VerifyError, match="assigned twice along one"):
        verify_plan_ir(ir)


def test_plan_read_undefined_slot_rejected(monkeypatch):
    ir = _lowered(lambda x: x * x + 1.0, (2.0,), monkeypatch)
    run = _first_run(ir)
    for op in run.ops:
        refs = [x for x in op.xs if isinstance(x, Ref) and x.slot is not None]
        if refs:
            refs[0].slot = 10**6
            break
    else:
        raise AssertionError("no slot-reading op in the run")
    with pytest.raises(VerifyError, match="read of undefined slot"):
        verify_plan_ir(ir)


def test_plan_run_export_out_of_range_rejected(monkeypatch):
    ir = _lowered(lambda x: x * x + 1.0, (2.0,), monkeypatch)
    run = _first_run(ir)
    _idx, slot, name = run.exports[0]
    run.exports = ((len(run.ops) + 7, slot, name),)
    with pytest.raises(VerifyError, match="outside\n?\\s*the run"):
        verify_plan_ir(ir)


def test_plan_loop_arity_rejected(monkeypatch):
    ir = _lowered(
        lambda x: rp.fori_loop(3, lambda i, a: a * x, x), (2.0,), monkeypatch
    )
    loop = next(i for i in ir.body.instrs if isinstance(i, ILoop))
    loop.body.result = ()
    with pytest.raises(VerifyError, match="loop body returns 0 values"):
        verify_plan_ir(ir)


def test_plan_duplicate_param_slot_rejected(monkeypatch):
    ir = _lowered(lambda x, y: x + y, (1.0, 2.0), monkeypatch)
    ir.param_slots = (ir.param_slots[0], ir.param_slots[0])
    with pytest.raises(VerifyError, match="parameter slot .* duplicated"):
        verify_plan_ir(ir)


def test_codegen_free_name_rejected():
    src = "def _plan_main(x):\n    return np.sin(x)\n"
    with pytest.raises(VerifyError, match="free name 'np'"):
        verify_codegen_source("f", src, {})


def test_codegen_syntax_error_rejected():
    with pytest.raises(VerifyError, match="does not parse"):
        verify_codegen_source("f", "def _plan_main(:\n", {})


def test_codegen_real_source_passes_and_counts(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY", "full")
    clear_plan_cache()
    fun = rp.trace_like(lambda x: rp.sum(rp.map(lambda v: v * v, x)), (np.ones(5),))
    before = VERIFY_STATS["codegen_checks"]
    p = plan_for(fun, (np.ones(5),), None, emitter="codegen")
    assert VERIFY_STATS["codegen_checks"] == before + 1
    (r,) = p.run((np.arange(5.0),))
    assert r == pytest.approx(np.sum(np.arange(5.0) ** 2))


# ---------------------------------------------------------------------------
# Hook behaviour: modes, counters, cached-plan reuse
# ---------------------------------------------------------------------------


def test_verification_is_on_under_pytest():
    # conftest defaults REPRO_VERIFY to "boundary"; the CI full-verify leg
    # legitimately overrides it to "full" — either way, never "off".
    assert verify_mode() in ("boundary", "full")
    assert verify_stats()["mode"] == verify_mode()


def test_off_mode_runs_no_checks(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY", "off")
    clear_plan_cache()
    before = dict(VERIFY_STATS)
    fun = rp.trace_like(lambda x: x * 3.0, (1.5,))
    plan_for(fun, (1.5,)).run((1.5,))
    assert dict(VERIFY_STATS) == before


def test_unknown_mode_means_off(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY", "paranoid")
    assert verify_mode() == "off"


def test_cached_plan_reuse_skips_reverification(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY", "full")
    clear_plan_cache()
    fun = rp.trace_like(lambda x: rp.sum(x) * 2.0, (np.ones(6),))
    before = VERIFY_STATS["plan_checks"]
    p1 = plan_for(fun, (np.ones(6),))
    after_first = VERIFY_STATS["plan_checks"]
    assert after_first == before + 1  # verification happens at lowering…
    p2 = plan_for(fun, (np.ones(6),))
    assert p2 is p1
    p2.run((np.arange(6.0),))
    assert VERIFY_STATS["plan_checks"] == after_first  # …never on reuse

    stats = plan_cache_stats()["verify"]
    assert stats["mode"] == "full"
    assert stats["plan_checks"] >= after_first - before


def test_verify_section_in_metrics_snapshot():
    from repro.obs import metrics

    snap = metrics.snapshot()
    assert "verify" in snap
    assert snap["verify"]["mode"] == verify_mode()


def test_verify_failures_counted():
    x = Var("x", F64)
    y = Var("y", F64)
    z = Var("z", F64)
    bad = Fun(
        "f",
        (x,),
        Body((Stm((z,), BinOp("add", y, y)), Stm((y,), BinOp("mul", x, x))), (z,)),
    )
    before = (VERIFY_STATS["fun_checks"], VERIFY_STATS["failures"])
    with pytest.raises(VerifyError):
        verify_fun(bad, where="opt:evil")
    assert VERIFY_STATS["fun_checks"] == before[0] + 1
    assert VERIFY_STATS["failures"] == before[1] + 1


# ---------------------------------------------------------------------------
# Fuzz corpus under REPRO_VERIFY=full on all four executors
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 5, 8, 13, 21])
def test_fuzz_corpus_green_under_full_verification(seed, monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY", "full")
    prog = _gen_program(seed)
    xs = np.random.default_rng(seed).standard_normal(6) * 0.8
    fc = rp.compile(rp.trace_like(prog, (xs,)))  # verifies every opt pass
    run_both(fc, xs)  # ref + vec agree
    want = fc(xs)
    (got,) = plan_for(fc.fun, (xs,)).run((xs,))
    np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)
    (got,) = plan_for(fc.fun, (xs,), None, emitter="codegen").run((xs,))
    np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)
    rp.grad(fc)(xs)  # jvp/vjp boundaries + post-AD optimization under full
