"""The shipped examples must run end-to-end (smoke tests, small timeouts)."""
import os
import subprocess
import sys

import pytest

EXAMPLES = [
    "quickstart.py",
    "kmeans_newton.py",
    "gmm_fit.py",
    "lstm_tagger.py",
    "monte_carlo_xs.py",
]

ROOT = os.path.join(os.path.dirname(__file__), "..", "examples")


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, os.path.join(ROOT, script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()
    assert "nan" not in proc.stdout.lower()
