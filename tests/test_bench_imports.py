"""Import-smoke coverage for the benchmark suite.

``bench_*.py`` files are not collected by pytest's default ``test_*``
pattern, so signature drift in the app/AD APIs they call would otherwise go
unnoticed until someone runs the benchmarks by hand.  Importing each module
executes its setup-level code (grids, paper tables, IR builders referenced
at module scope) without running any benchmark.
"""
import importlib
import pathlib
import sys

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
BENCH_MODULES = sorted(p.stem for p in BENCH_DIR.glob("bench_*.py"))


@pytest.fixture(scope="module", autouse=True)
def _bench_on_path():
    sys.path.insert(0, str(BENCH_DIR))
    try:
        yield
    finally:
        sys.path.remove(str(BENCH_DIR))


def test_bench_modules_discovered():
    # The paper's tables 1-6 plus ablations and the shared common module.
    assert len(BENCH_MODULES) >= 7


@pytest.mark.parametrize("mod", BENCH_MODULES)
def test_bench_module_imports(mod):
    importlib.import_module(mod)


def test_common_exposes_plan_backend_wiring():
    common = importlib.import_module("common")
    from repro.exec.registry import available_backends

    # any registered backend is a valid bench target (REPRO_BENCH_BACKEND)
    assert common.BENCH_BACKEND in available_backends()


def test_shard_stats_shape_for_bench_ablations():
    """The A6 shard ablation keys off ``shard_stats()``; make sure the
    counters exist, expose the worker/mode configuration, and move when a
    batched call is sharded."""
    import numpy as np

    import repro as rp
    from repro.exec.shard import shard_stats, shutdown_shard_pool

    st = shard_stats()
    assert {
        "sharded_calls",
        "batched_calls",
        "fallback_calls",
        "chunks",
        "pool_builds",
        "pool_errors",
        "workers",
        "mode",
    } <= set(st)
    assert st["workers"] >= 1 and st["mode"] in ("thread", "process")
    before = st["batched_calls"] + st["fallback_calls"]
    jac = rp.jacobian(
        rp.compile(rp.trace_like(lambda x: rp.map(lambda v: v * v, x), (np.ones(4),)))
    )
    jac(np.ones(4), backend="shard")
    st = shard_stats()
    assert st["batched_calls"] + st["fallback_calls"] > before
    shutdown_shard_pool()


def test_opt_stats_shape_for_bench_ablations():
    """The A5 fusion ablation keys off the pass registry and ``opt_stats``;
    make sure the counters exist, cover every registered pass, and move when
    the pipeline runs."""
    import numpy as np

    import repro as rp
    from repro.opt.pipeline import opt_stats, optimize_fun

    st = opt_stats()
    assert {"passes", "cache", "enabled"} <= set(st)
    assert {"simplify", "cse", "fuse", "dce"} <= set(st["passes"])
    for c in st["passes"].values():
        assert {"fired", "changed"} <= set(c)
    before = st["passes"]["fuse"]["fired"]
    fun = rp.trace_like(lambda xs: rp.sum(rp.map(lambda x: x * 2.0, xs)), (np.ones(3),))
    optimize_fun(fun, cache=False)
    assert opt_stats()["passes"]["fuse"]["fired"] > before


def test_cost_model_shape_for_bench_ablation_a8():
    """The A8 cost-model ablation keys off ``fusion_stats``, the
    REPRO_FUSE_COST mode surfaced in ``opt_stats``, and the shard chunk
    counters; make sure the wiring exists and moves."""
    import numpy as np

    import repro as rp
    from repro.ir.cost_model import estimate_fun, soac_elem_cost, task_grain
    from repro.opt.fusion import fuse_cost_mode, fusion_stats, reset_fusion_stats
    from repro.opt.pipeline import opt_stats, optimize_fun

    assert fuse_cost_mode() in ("on", "off", "always")
    st = opt_stats()
    assert {"fuse_cost_mode", "fusion"} <= set(st)
    assert {"vertical", "horizontal", "cost_rejected"} <= set(st["fusion"])

    reset_fusion_stats()
    fun = rp.trace_like(lambda xs: rp.sum(rp.map(lambda x: x * 2.0, xs)), (np.ones(3),))
    optimize_fun(fun, cache=False)
    assert fusion_stats()["vertical"] >= 1

    fe = estimate_fun(fun, [(3,)])
    assert fe.total.work > 0 and fe.soacs
    assert task_grain() >= 1
    assert soac_elem_cost(fun.body.stms[0].exp) is not None
