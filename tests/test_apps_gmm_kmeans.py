"""Application-level integration tests: GMM and k-means (dense + sparse) —
IR objective == NumPy reference == eager; our AD == manual == eager AD."""
import numpy as np
import pytest

import repro as rp
from repro.apps import datagen, gmm, kmeans, kmeans_sparse
from repro.baselines import eager as eg


@pytest.fixture(scope="module")
def gmm_small():
    n, d, K = 20, 4, 3
    alphas, means, icf, x, _ = datagen.gmm_instance(n, d, K, seed=1)
    fun = gmm.build_ir(n, d, K)
    return (alphas, means, icf, x), rp.compile(fun)


def test_gmm_objective_agreement(gmm_small):
    (alphas, means, icf, x), fc = gmm_small
    v_np = gmm.objective_np(alphas, means, icf, x)
    assert np.allclose(fc(alphas, means, icf, x), v_np)
    assert np.allclose(fc(alphas, means, icf, x, backend="ref"), v_np)
    assert np.allclose(
        gmm.objective_eager(eg.T(alphas), eg.T(means), eg.T(icf), x).data, v_np
    )


def test_gmm_gradient_three_ways(gmm_small):
    (alphas, means, icf, x), fc = gmm_small
    g = rp.grad(fc, wrt=[0, 1, 2])
    ours = g(alphas, means, icf, x)
    manual = gmm.grad_manual(alphas, means, icf, x)
    egr = eg.grad(lambda a, m, i: gmm.objective_eager(a, m, i, x))(alphas, means, icf)
    for o, m, e in zip(ours, manual, egr):
        np.testing.assert_allclose(o, m, atol=1e-8)
        np.testing.assert_allclose(e, m, atol=1e-8)


def test_gmm_gradient_ref_backend(gmm_small):
    (alphas, means, icf, x), fc = gmm_small
    g = rp.grad(fc, wrt=[0])
    np.testing.assert_allclose(
        g(alphas, means, icf, x, backend="ref")[0] if isinstance(g(alphas, means, icf, x, backend="ref"), tuple) else g(alphas, means, icf, x, backend="ref"),
        gmm.grad_manual(alphas, means, icf, x)[0],
        atol=1e-8,
    )


def test_kmeans_cost_and_grad():
    pts, ctr = datagen.kmeans_instance(3, 50, 4, seed=3)
    fc = rp.compile(kmeans.build_ir(50, 3, 4))
    assert np.allclose(fc(pts, ctr), kmeans.cost_np(pts, ctr))
    assert np.allclose(kmeans.cost_eager(pts, ctr).data, kmeans.cost_np(pts, ctr))
    g = rp.grad(fc, wrt=[1])
    gm, hm = kmeans.grad_hess_manual(pts, ctr)
    np.testing.assert_allclose(g(pts, ctr), gm, atol=1e-8)


def test_kmeans_hessian_diag_jvp_of_vjp():
    """§7.4: Hessian via nesting forward over reverse, one pass."""
    pts, ctr = datagen.kmeans_instance(3, 40, 4, seed=4)
    fc = rp.compile(kmeans.build_ir(40, 3, 4))
    hd = rp.hessian_diag(fc, wrt=1)
    _, hm = kmeans.grad_hess_manual(pts, ctr)
    np.testing.assert_allclose(hd(pts, ctr), hm, atol=1e-6)


def test_kmeans_newton_steps_agree():
    pts, ctr = datagen.kmeans_instance(3, 60, 4, seed=5)
    fc = rp.compile(kmeans.build_ir(60, 3, 4))
    gradf = rp.grad(fc, wrt=[1])
    hessf = rp.hessian_diag(fc, wrt=1)
    ours = kmeans.newton_step_ir(fc, pts, ctr, gradf=gradf, hessf=hessf)
    manual = kmeans.newton_step_manual(pts, ctr)
    np.testing.assert_allclose(ours, manual, atol=1e-6)
    # Newton iteration decreases the cost.
    assert kmeans.cost_np(pts, ours) <= kmeans.cost_np(pts, ctr)


def test_kmeans_sparse_cost_and_grad():
    indptr, indices, values, centres = datagen.sparse_kmeans_instance(40, 12, 5, k=3, seed=4)
    fc = rp.compile(kmeans_sparse.build_ir(40, 3, 12))
    vn = kmeans_sparse.cost_np(indptr, indices, values, centres)
    assert np.allclose(fc(indptr, indices, values, centres), vn)
    assert np.allclose(kmeans_sparse.cost_eager(indptr, indices, values, centres).data, vn)
    g = rp.grad(fc, wrt=[3])
    gm = kmeans_sparse.grad_manual(indptr, indices, values, centres)
    np.testing.assert_allclose(g(indptr, indices, values, centres), gm, atol=1e-8)
    gE = eg.grad(lambda c: kmeans_sparse.cost_eager(indptr, indices, values, c))(centres)
    np.testing.assert_allclose(gE, gm, atol=1e-8)
