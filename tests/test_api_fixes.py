"""Regression tests for ``core/api.py`` calling-convention fixes:
``value_and_grad`` tuple normalisation and ``hessian_diag`` tangent
ordering."""
import numpy as np
import pytest

import repro as rp
from repro.util import ADError

rng = np.random.default_rng(3)


# ---------------------------------------------------------------------------
# value_and_grad
# ---------------------------------------------------------------------------


def test_value_and_grad_single_adjoint():
    # One float parameter -> a single adjoint; value_and_grad must apply the
    # same tuple normalisation as grad on every backend.
    def f(xs):
        return rp.sum(rp.map(lambda x: x * x * 0.5, xs))

    fc = rp.compile(rp.trace_like(f, (np.ones(5),)))
    vg = rp.value_and_grad(fc)
    g = rp.grad(fc)
    xs = rng.standard_normal(5)
    for backend in ("ref", "vec", "plan"):
        val, adj = vg(xs, backend=backend)
        np.testing.assert_allclose(val, 0.5 * (xs * xs).sum(), rtol=1e-12)
        np.testing.assert_allclose(np.asarray(adj), xs, rtol=1e-12)
        np.testing.assert_allclose(
            np.asarray(adj), np.asarray(g(xs, backend=backend)), rtol=1e-12
        )


def test_value_and_grad_multi_adjoint_matches_grad():
    def f(xs, ys):
        return rp.sum(rp.map(lambda x, y: x * y, xs, ys))

    fc = rp.compile(rp.trace_like(f, (np.ones(4), np.ones(4))))
    vg = rp.value_and_grad(fc)
    xs, ys = rng.standard_normal(4), rng.standard_normal(4)
    val, (gx, gy) = vg(xs, ys)
    np.testing.assert_allclose(val, xs @ ys, rtol=1e-12)
    np.testing.assert_allclose(np.asarray(gx), ys, rtol=1e-12)
    np.testing.assert_allclose(np.asarray(gy), xs, rtol=1e-12)


# ---------------------------------------------------------------------------
# hessian_diag
# ---------------------------------------------------------------------------


def _quad(w, x, b):
    # f(w, x, b) = sum(w * x^2 + b * x); d2f/dx2 = 2w (diagonal Hessian).
    return rp.sum(rp.map(lambda wi, xi, bi: wi * xi * xi + bi * xi, w, x, b))


def test_hessian_diag_wrt_middle_float_param():
    # Float parameters both before and after wrt: the tangent ordering must
    # be derived from the transformed parameter list, not assumed.
    fc = rp.compile(rp.trace_like(_quad, (np.ones(4), np.ones(4), np.ones(4))))
    h = rp.hessian_diag(fc, wrt=1)
    w, x, b = rng.standard_normal(4), rng.standard_normal(4), rng.standard_normal(4)
    for backend in ("ref", "vec", "plan"):
        np.testing.assert_allclose(
            h(w, x, b, backend=backend), 2.0 * w, rtol=1e-10, atol=1e-10
        )


def test_hessian_diag_wrt_first_with_trailing_float_params():
    def f(x, w):
        return rp.sum(rp.map(lambda xi, wi: wi * xi * xi, x, w))

    fc = rp.compile(rp.trace_like(f, (np.ones(3), np.ones(3))))
    h = rp.hessian_diag(fc, wrt=0)
    x, w = rng.standard_normal(3), rng.standard_normal(3)
    np.testing.assert_allclose(h(x, w), 2.0 * w, rtol=1e-10, atol=1e-10)


def test_hessian_diag_with_int_param_mixed_in():
    # Non-float parameters get no tangent slot; ordering must still line up.
    def f(idx, x):
        return rp.sum(rp.map(lambda i: x[i] * x[i], idx))

    fc = rp.compile(rp.trace_like(f, (np.array([0, 1, 2]), np.ones(4))))
    h = rp.hessian_diag(fc, wrt=1)
    idx = np.array([0, 2, 2])
    x = rng.standard_normal(4)
    expect = np.zeros(4)
    for i in idx:
        expect[i] += 2.0
    np.testing.assert_allclose(h(idx, x), expect, rtol=1e-10, atol=1e-10)


def test_hessian_diag_rejects_out_of_range_wrt():
    fc = rp.compile(rp.trace_like(_quad, (np.ones(4), np.ones(4), np.ones(4))))
    with pytest.raises(ADError, match="out of range"):
        rp.hessian_diag(fc, wrt=-1)  # would silently return zeros otherwise
    with pytest.raises(ADError, match="out of range"):
        rp.hessian_diag(fc, wrt=3)


def test_hessian_diag_wrong_arity_fails_loudly():
    fc = rp.compile(rp.trace_like(_quad, (np.ones(4), np.ones(4), np.ones(4))))
    h = rp.hessian_diag(fc, wrt=1)
    with pytest.raises(ADError, match="expected 3 arguments"):
        h(np.ones(4), np.ones(4))
    with pytest.raises(ADError, match="expected 3 arguments"):
        h(np.ones(4), np.ones(4), np.ones(4), np.ones(4))


def test_hessian_diag_against_dense_jacobian_of_grad():
    # Cross-check H·1 against finite differences of the gradient.
    fc = rp.compile(rp.trace_like(_quad, (np.ones(4), np.ones(4), np.ones(4))))
    h = rp.hessian_diag(fc, wrt=1)
    g = rp.grad(fc, wrt=[1])
    w, x, b = rng.standard_normal(4), rng.standard_normal(4), rng.standard_normal(4)
    eps = 1e-6
    fd = np.zeros(4)
    for i in range(4):
        xp, xm = x.copy(), x.copy()
        xp[i] += eps
        xm[i] -= eps
        fd[i] = (np.asarray(g(w, xp, b))[i] - np.asarray(g(w, xm, b))[i]) / (2 * eps)
    np.testing.assert_allclose(h(w, x, b), fd, rtol=1e-5, atol=1e-5)
