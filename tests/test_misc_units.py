"""Remaining unit coverage: util, pretty-printer constructs, datagen
determinism, cost ratios, API shapes."""
import numpy as np
import pytest

import repro as rp
from repro.apps import datagen
from repro.exec.cost import Cost
from repro.ir import pretty
from repro.util import ADError, NameSupply, fresh


def test_name_supply_unique_and_stem_stable():
    s = NameSupply()
    a = s.fresh("x")
    b = s.fresh("x")
    assert a != b
    c = s.fresh(a)  # re-freshening strips the numeric suffix
    assert c.startswith("x_")
    assert c.count("_") == 1


def test_fresh_global():
    assert fresh("q") != fresh("q")


def test_pretty_covers_all_constructs():
    def f(xs, inds):
        n = rp.size(xs)
        s = rp.scan(lambda a, b: a + b, 0.0, xs)
        h = rp.reduce_by_index(4, lambda a, b: a + b, 0.0, inds, xs)
        sc = rp.scatter(rp.zeros_like(xs), inds, s)
        r = rp.reverse(xs)
        cc = rp.concat(xs, r)
        lp = rp.fori_loop(3, lambda i, a: a + xs[i % n], 0.0, stripmine=2)
        w = rp.while_loop(lambda v: v < 5.0, lambda v: v + 1.0, 0.0, bound=8)
        br = rp.cond(w > 1.0, lambda: lp, lambda: w)
        return rp.sum(s) + rp.sum(h) + rp.sum(sc) + rp.sum(cc) + br

    fun = rp.trace_like(f, (np.ones(4), np.array([0, 1, 2, 3])))
    txt = pretty(fun)
    for kw in ("scan", "reduce_by_index", "scatter", "reverse(", "concat(",
               "loop (", "@stripmine", "while", "@bound", "if ", "length_0"):
        assert kw in txt, kw


def test_pretty_vjp_shows_accumulators():
    f = rp.compile(rp.trace_like(lambda xs: rp.sum(rp.map(lambda x: x * xs[0], xs)), (np.ones(3),)))
    txt = rp.vjp(f).show()
    assert "withacc" in txt and "upd " in txt


def test_datagen_deterministic():
    a1 = datagen.gmm_instance(10, 3, 2, seed=5)
    a2 = datagen.gmm_instance(10, 3, 2, seed=5)
    for x, y in zip(a1[:4], a2[:4]):
        np.testing.assert_array_equal(x, y)
    b1 = datagen.sparse_kmeans_instance(20, 8, 3, seed=1)
    b2 = datagen.sparse_kmeans_instance(20, 8, 3, seed=1)
    for x, y in zip(b1, b2):
        np.testing.assert_array_equal(x, y)


def test_gmm_shapes_table5a():
    assert datagen.GMM_SHAPES["D0"] == (1000, 64, 200)
    assert datagen.GMM_SHAPES["D5"] == (10000, 128, 200)


def test_cost_ratio_helper():
    a = Cost(work=100)
    b = Cost(work=25)
    assert a.ratio(b) == 4.0
    assert Cost(mem_reads=3, mem_writes=4).mem == 7


def test_grad_requires_scalar_output():
    f = rp.compile(rp.trace_like(lambda xs: rp.map(lambda x: x, xs), (np.ones(3),)))
    with pytest.raises(ADError):
        rp.grad(f)


def test_hessian_diag_requires_float_wrt():
    f = rp.compile(rp.trace_like(lambda xs, n: rp.sum(xs), (np.ones(3), np.int64(2))))
    with pytest.raises(ADError):
        rp.hessian_diag(f, wrt=1)


def test_vjp_seed_scaling_linearity():
    f = rp.compile(rp.trace_like(lambda x: rp.sin(x), (1.0,)))
    rev = rp.vjp(f)
    _, g1 = rev(1.0, 1.0)
    _, g3 = rev(1.0, 3.0)
    assert abs(g3 - 3 * g1) < 1e-14


def test_jvp_int_params_have_no_tangent_slot():
    f = rp.compile(rp.trace_like(lambda x, n: x * rp.astype(n, rp.F64), (1.0, np.int64(3))))
    fwd = rp.jvp(f)
    # params: x, n, dx (no dn)
    assert len(fwd.fun.params) == 3
    out = fwd(2.0, 3, 1.0)
    assert out[-1] == 3.0


def test_compiled_repr_and_name():
    f = rp.compile(rp.trace_like(lambda x: x, (1.0,), name="idfun"))
    assert f.name.startswith("idfun") and "idfun" in repr(f)
