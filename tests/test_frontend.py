"""Tracer / public-API tests."""
import numpy as np
import pytest

import repro as rp
from repro.util import IRError


def test_trace_like_infers_types():
    fun = rp.trace_like(lambda x, xs, n: x, (1.0, np.ones((2, 3)), np.int64(4)))
    assert str(fun.params[0].type) == "f64"
    assert str(fun.params[1].type) == "[][]f64"
    assert str(fun.params[2].type) == "i64"


def test_python_literals_adapt_to_f32():
    fun = rp.trace_like(lambda x: x * 2 + 1.5, (np.float32(1.0),))
    fc = rp.compile(fun)
    out = fc(np.float32(2.0))
    assert out.dtype == np.float32 and out == np.float32(5.5)


def test_reverse_operators():
    fc = rp.compile(rp.trace_like(lambda x: 3.0 - x, (1.0,)))
    assert fc(1.0) == 2.0
    fc = rp.compile(rp.trace_like(lambda x: 2.0 / x, (4.0,)))
    assert fc(4.0) == 0.5


def test_tracer_guards():
    with pytest.raises(IRError):
        rp.trace_like(lambda x: float(x), (1.0,))
    with pytest.raises(IRError):
        rp.trace_like(lambda x: 1.0 if x > 0 else 0.0, (1.0,))
    with pytest.raises(IRError):
        rp.trace_like(lambda xs: [v for v in xs], (np.ones(3),))


def test_indexing_forms():
    def f(m, i):
        return m[0, 1] + m[i, i] + rp.sum(m[0])

    fc = rp.compile(rp.trace_like(f, (np.ones((2, 2)), np.int64(1))))
    m = np.arange(4.0).reshape(2, 2)
    assert fc(m, 1) == m[0, 1] + m[1, 1] + m[0].sum()


def test_loop_state_type_mismatch_rejected():
    with pytest.raises(IRError):
        rp.trace_like(lambda x: rp.fori_loop(3, lambda i, a: rp.astype(a, rp.I64), x), (1.0,))


def test_cond_arity_mismatch_rejected():
    with pytest.raises(IRError):
        rp.trace_like(
            lambda x: rp.cond(x > 0.0, lambda: (x, x), lambda: x), (1.0,)
        )


def test_operations_outside_trace_rejected():
    with pytest.raises(IRError):
        rp.iota(5)


def test_compiled_show_and_cost():
    fc = rp.compile(rp.trace_like(lambda x: x * x, (1.0,)))
    assert "fun" in fc.show()
    c = fc.cost(3.0)
    assert c.work >= 1


def test_unknown_backend_rejected():
    fc = rp.compile(rp.trace_like(lambda x: x, (1.0,)))
    from repro.util import ReproError

    with pytest.raises(ReproError):
        fc(1.0, backend="gpu")


def test_multi_output_tuple():
    fc = rp.compile(rp.trace_like(lambda x: (x, x * 2.0, x * 3.0), (1.0,)))
    assert fc(2.0) == (2.0, 4.0, 6.0)


def test_numpy_scalar_left_operand():
    fc = rp.compile(rp.trace_like(lambda x: np.float64(2.0) * x, (1.0,)))
    assert fc(3.0) == 6.0
