"""Free variables, substitution, refreshing."""
import numpy as np

import repro as rp
from repro.ir import (
    Builder,
    F64,
    Fun,
    Lambda,
    Var,
    array,
    check_fun,
    const,
    free_vars,
    refresh_body,
    refresh_lambda,
    subst,
)
from repro.ir.ast import Body, Stm, BinOp
from repro.ir.traversal import all_bound_vars, count_stms
from repro.exec import run_fun


def _map_with_free_var():
    """map (\\x -> x * w) xs — w free in the lambda."""
    b = Builder()
    xs = Var("xs", array(F64, 1))
    w = Var("w", F64)
    x = Var("x", F64)
    lb = Builder()
    y = lb.mul(x, w, "y")
    lam = Lambda((x,), lb.finish([y]))
    (out,) = b.map(lam, [xs], names=["out"])
    return Fun("f", (xs, w), b.finish([out])), lam


def test_free_vars_of_lambda():
    fun, lam = _map_with_free_var()
    fvs = free_vars(lam)
    assert list(fvs) == ["w"]


def test_free_vars_of_fun_empty():
    fun, _ = _map_with_free_var()
    assert free_vars(fun) == {}


def test_subst_respects_shadowing():
    # Substituting the lambda's bound name must not touch its body.
    fun, lam = _map_with_free_var()
    w2 = Var("w2", F64)
    lam2 = subst(lam, {"w": w2})
    assert "w2" in free_vars(lam2)
    lam3 = subst(lam, {"x": w2})  # x is bound; no effect
    assert lam3 == lam


def test_refresh_preserves_semantics():
    fun, _ = _map_with_free_var()
    body2 = refresh_body(fun.body)
    fun2 = Fun("f2", fun.params, body2)
    check_fun(fun2)
    xs = np.arange(4.0)
    r1 = run_fun(fun, [xs, 3.0])
    r2 = run_fun(fun2, [xs, 3.0])
    np.testing.assert_allclose(r1[0], r2[0])


def test_refresh_renames_binders():
    fun, _ = _map_with_free_var()
    before = set(all_bound_vars(fun))
    body2 = refresh_body(fun.body)
    after = set(all_bound_vars(Fun("f2", fun.params, body2))) - {p.name for p in fun.params}
    # No stale binder names survive (params excluded).
    stale = (before - {p.name for p in fun.params}) & after
    assert not stale


def test_count_stms():
    fun, _ = _map_with_free_var()
    assert count_stms(fun) == 2  # the map + the lambda's mul
