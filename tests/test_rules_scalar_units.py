"""Direct unit tests of the shared scalar derivative table (both AD modes
are assembled from these rules, so each partial is pinned numerically)."""
import math

import numpy as np
import pytest

from repro.exec.interp import RefInterp
from repro.ir import Builder, F64, Fun, Var, const
from repro.ir.ast import BinOp, UnOp
from repro.core.rules_scalar import binop_partials, unop_partial


def _eval_unop_partial(op: str, x: float) -> float:
    b = Builder()
    xv = Var("x", F64)
    prim = b.unop(op, xv, "y")
    d = unop_partial(b, op, xv, prim)
    if d is None:
        return 0.0
    fun = Fun("t", (xv,), b.finish([d]))
    return float(RefInterp().run(fun, [x])[0])


def _eval_binop_partials(op: str, x: float, y: float):
    b = Builder()
    xv, yv = Var("x", F64), Var("y", F64)
    prim = b.binop(op, xv, yv, "z")
    dx, dy = binop_partials(b, op, xv, yv, prim)
    outs = [d if d is not None else const(0.0, F64) for d in (dx, dy)]
    fun = Fun("t", (xv, yv), b.finish(outs))
    r = RefInterp().run(fun, [x, y])
    return float(r[0]), float(r[1])


UNOP_CASES = {
    "neg": (0.7, -1.0),
    "sin": (0.7, math.cos(0.7)),
    "cos": (0.7, -math.sin(0.7)),
    "tan": (0.4, 1.0 / math.cos(0.4) ** 2),
    "exp": (0.7, math.exp(0.7)),
    "log": (0.7, 1 / 0.7),
    "sqrt": (0.7, 0.5 / math.sqrt(0.7)),
    "abs": (-0.7, -1.0),
    "sgn": (0.7, 0.0),
    "tanh": (0.7, 1 - math.tanh(0.7) ** 2),
    "floor": (0.7, 0.0),
    "erf": (0.7, 2 / math.sqrt(math.pi) * math.exp(-0.49)),
}


@pytest.mark.parametrize("op", sorted(UNOP_CASES))
def test_unop_partial(op):
    x, want = UNOP_CASES[op]
    assert abs(_eval_unop_partial(op, x) - want) < 1e-12


def test_sigmoid_partial():
    s = 1 / (1 + math.exp(-0.7))
    assert abs(_eval_unop_partial("sigmoid", 0.7) - s * (1 - s)) < 1e-12


BINOP_CASES = {
    "add": (1.3, 2.1, 1.0, 1.0),
    "sub": (1.3, 2.1, 1.0, -1.0),
    "mul": (1.3, 2.1, 2.1, 1.3),
    "div": (1.3, 2.1, 1 / 2.1, -1.3 / 2.1**2),
    "pow": (1.3, 2.1, 2.1 * 1.3**1.1, 1.3**2.1 * math.log(1.3)),
    "min": (1.3, 2.1, 1.0, 0.0),
    "max": (1.3, 2.1, 0.0, 1.0),
    "mod": (7.3, 2.1, 1.0, -3.0),
}


@pytest.mark.parametrize("op", sorted(BINOP_CASES))
def test_binop_partials(op):
    x, y, wx, wy = BINOP_CASES[op]
    dx, dy = _eval_binop_partials(op, x, y)
    assert abs(dx - wx) < 1e-10 and abs(dy - wy) < 1e-10


def test_comparisons_have_no_partials():
    b = Builder()
    xv, yv = Var("x", F64), Var("y", F64)
    prim = b.binop("lt", xv, yv, "z")
    dx, dy = binop_partials(b, "lt", xv, yv, prim)
    assert dx is None and dy is None
