"""Alpha-invariant IR content hash (``ir/analysis.py:ir_hash``): renamed
bodies hash equal, semantically different bodies don't, and the hash-keyed
tier-1 plan cache shares one lowering across alpha-equivalent ``Fun``s."""
import numpy as np

import repro as rp
from repro.ir.analysis import ir_hash
from repro.ir.ast import Fun
from repro.ir.traversal import refresh_body, rename_var
from repro.exec.plan import clear_plan_cache, plan_cache_stats, plan_for

rng = np.random.default_rng(23)


def _trace(f, *args):
    return rp.trace_like(f, args)


def _alpha_rename(fun: Fun) -> Fun:
    """A structurally identical clone of ``fun`` with every binder renamed."""
    m = {p.name: rename_var(p) for p in fun.params}
    return Fun(fun.name, tuple(m[p.name] for p in fun.params),
               refresh_body(fun.body, m))


def _rich(v, w):
    s = rp.sum(v * w)
    m = rp.reduce(lambda a, b: rp.maximum(a, b), -1.0e9, v)
    sc = rp.scan(lambda a, b: a + b, 0.0, w)
    i = rp.iota(rp.size(v))
    c = rp.cond(s > 0.0, lambda: s * 2.0, lambda: s - 1.0)
    loop = rp.fori_loop(3, lambda j, a: a + rp.sum(w), s)
    h = rp.reduce_by_index(4, lambda a, b: a + b, 0.0,
                           rp.astype(i, rp.I64) % 4, v)
    return s + m + c + loop + rp.sum(sc) + rp.sum(h)


def test_alpha_renamed_bodies_hash_equal():
    v, w = np.ones(5), np.ones(5)
    fun = _trace(_rich, v, w)
    renamed = _alpha_rename(fun)
    # Sanity: the rename really did change the names...
    assert [p.name for p in renamed.params] != [p.name for p in fun.params]
    # ...and the hash ignores them.
    assert ir_hash(fun) == ir_hash(renamed)
    # Twice-renamed stays in the same class.
    assert ir_hash(_alpha_rename(renamed)) == ir_hash(fun)


def test_hash_is_stable_across_calls():
    fun = _trace(lambda v: rp.sum(v * v), np.ones(4))
    h = ir_hash(fun)
    assert ir_hash(fun) == h  # memoised path
    assert isinstance(h, str) and len(h) == 32  # blake2b-128 hex


def test_semantically_different_bodies_hash_differently():
    v, w = np.ones(4), np.ones(4)
    mul = _trace(lambda v, w: rp.sum(v * w), v, w)
    add = _trace(lambda v, w: rp.sum(v + w), v, w)
    assert ir_hash(mul) != ir_hash(add)
    # Same operator tree, different literal: still different programs.
    k2 = _trace(lambda v: rp.sum(v * 2.0), v)
    k3 = _trace(lambda v: rp.sum(v * 3.0), v)
    assert ir_hash(k2) != ir_hash(k3)
    # Same shape of body, different SOAC operator inside the lambda.
    r_add = _trace(lambda v: rp.reduce(lambda a, b: a + b, 0.0, v), v)
    r_max = _trace(lambda v: rp.reduce(lambda a, b: rp.maximum(a, b), 0.0, v), v)
    assert ir_hash(r_add) != ir_hash(r_max)


def test_free_variable_identity_is_not_erased():
    """De-Bruijn numbering must keep *which* param is used distinct."""
    v, w = np.ones(4), np.ones(4)
    first = _trace(lambda v, w: rp.sum(v), v, w)
    second = _trace(lambda v, w: rp.sum(w), v, w)
    assert ir_hash(first) != ir_hash(second)


def test_alpha_equivalent_funs_share_one_tier1_lowering():
    """The cache key is the content hash, so a retraced/renamed Fun object
    reuses the cached lowering instead of compiling its own."""
    v = rng.standard_normal(6)
    fun = _trace(lambda v: rp.sum(rp.map(lambda x: rp.sin(x) * x, v)), v)
    renamed = _alpha_rename(fun)
    clear_plan_cache()
    p1 = plan_for(fun, (v,))
    p2 = plan_for(renamed, (v,))
    st = plan_cache_stats()
    assert st["misses"] == 1, st
    assert st["hits"] == 1, st
    assert st["entries"] == 1, st
    assert p2 is p1  # literally the same cached plan
    np.testing.assert_array_equal(p1.run((v,))[0], p2.run((v,))[0])


def test_distinct_programs_do_not_collide_in_the_cache():
    v = rng.standard_normal(6)
    mul = _trace(lambda v: rp.sum(v * v), v)
    add = _trace(lambda v: rp.sum(v + v), v)
    clear_plan_cache()
    plan_for(mul, (v,))
    plan_for(add, (v,))
    st = plan_cache_stats()
    assert st["misses"] == 2, st
    assert st["entries"] == 2, st
