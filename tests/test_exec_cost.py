"""Work / span / memory cost-model tests."""
import numpy as np

import repro as rp


def _cost(f, args):
    fc = rp.compile(rp.trace_like(f, args))
    return fc, fc.cost(*args)


def test_map_work_linear_span_constant():
    f = lambda xs: rp.map(lambda x: x * x + 1.0, xs)
    _, c1 = _cost(f, (np.ones(64),))
    fc, c2 = _cost(f, (np.ones(1024),))
    assert c2.work >= 16 * c1.work * 0.9
    assert c2.span == c1.span  # map iterations are parallel


def test_reduce_span_logarithmic():
    f = lambda xs: rp.sum(xs)
    _, c1 = _cost(f, (np.ones(2**6),))
    _, c2 = _cost(f, (np.ones(2**12),))
    assert c2.work > 50 * c1.work / 2
    # span grows like log2: 12/6 = 2x (+/- constant)
    assert c2.span <= 2 * c1.span + 4


def test_loop_span_linear():
    f = lambda x: rp.fori_loop(64, lambda i, a: a * x, 1.0)
    _, c1 = _cost(f, (1.0,))
    f2 = lambda x: rp.fori_loop(128, lambda i, a: a * x, 1.0)
    _, c2 = _cost(f2, (1.0,))
    assert 1.8 <= c2.span / c1.span <= 2.2


def test_scatter_adjoint_work_proportional_to_m_not_n():
    """Paper §5.3: the scatter rule's work is O(m), not O(n)."""
    def make(n, m):
        def f(xs, inds, vals):
            ys = rp.scatter(xs, inds, vals)
            return rp.sum(rp.map(lambda v: v * v, ys))

        xs = np.zeros(n)
        inds = np.arange(m)
        vals = np.ones(m)
        g = rp.grad(rp.compile(rp.trace_like(f, (xs, inds, vals))), wrt=[2])
        from repro.exec.cost import CostRecorder
        from repro.exec.interp import RefInterp

        rec = CostRecorder()
        RefInterp(rec).run(g.adfun.fun, [xs, inds, vals, 1.0])
        return rec.snapshot().work

    w_small_n = make(100, 16)
    w_big_n = make(10_000, 16)
    # The sum over ys is O(n) regardless; isolate the scatter part by
    # comparing growth: work grows ~linearly in n only through the summap,
    # so doubling m at fixed n must add only O(m).
    w_mbig = make(10_000, 32)
    assert w_mbig - w_big_n < 1000  # the extra 16 writes cost O(m), not O(n)


def test_memory_counts_arrays_only():
    f = lambda xs: rp.sum(rp.map(lambda x: x * 2.0, xs))
    _, c = _cost(f, (np.ones(100),))
    assert c.mem_reads >= 100
    # scalar ops inside the lambda don't touch "global memory"
    assert c.mem_reads + c.mem_writes < 500


def test_checkpoint_alloc_tracked():
    def f(x):
        return rp.fori_loop(50, lambda i, a: rp.sin(a) * x, x)

    g = rp.grad(rp.compile(rp.trace_like(f, (1.0,))))
    from repro.exec.cost import CostRecorder
    from repro.exec.interp import RefInterp

    rec = CostRecorder()
    RefInterp(rec).run(g.adfun.fun, [1.0, 1.0])
    assert rec.snapshot().peak_alloc >= 50  # the loop checkpoint tape
