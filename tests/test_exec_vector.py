"""Vectorised (SIMT) interpreter vs the reference interpreter."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro as rp
from helpers import run_both
from repro.util import ExecError

rng = np.random.default_rng(0)


def test_nested_map_if_loop_equivalence():
    def f(m):
        def row(r):
            s = rp.sum(rp.map(lambda x: x * x, r))
            t = rp.cond(s > 10.0, lambda: s * 2.0, lambda: s + 1.0)
            return rp.fori_loop(3, lambda i, a: a * 0.5 + t, t)

        return rp.map(row, m)

    fc = rp.compile(rp.trace_like(f, (np.ones((3, 4)),)))
    run_both(fc, rng.standard_normal((5, 4)))


def test_lane_varying_loop_counts():
    def f(ns, xs):
        def per(n, x):
            return rp.fori_loop(n, lambda i, a: a + x, 0.0)

        return rp.map(per, ns, xs)

    fc = rp.compile(rp.trace_like(f, (np.array([1, 2]), np.ones(2))))
    ns = np.array([0, 3, 7, 2])
    xs = rng.standard_normal(4)
    out = run_both(fc, ns, xs)
    np.testing.assert_allclose(out, ns * xs)


def test_while_loop_divergent_lanes():
    def f(xs):
        def per(x):
            return rp.while_loop(lambda v: v < 10.0, lambda v: v * 2.0, x)

        return rp.map(per, xs)

    fc = rp.compile(rp.trace_like(f, (np.ones(3),)))
    run_both(fc, np.array([0.5, 3.0, 20.0, 9.99]))


def test_masked_branch_side_effect_free():
    # Division by zero in the untaken branch must not corrupt results.
    def f(xs):
        return rp.map(
            lambda x: rp.cond(x > 0.0, lambda: 1.0 / x, lambda: -x), xs
        )

    fc = rp.compile(rp.trace_like(f, (np.ones(3),)))
    out = run_both(fc, np.array([2.0, 0.0, -3.0]))
    np.testing.assert_allclose(out, [0.5, 0.0, 3.0])


def test_indirect_indexing_batched():
    def f(tbl, idx):
        return rp.map(lambda i: tbl[i] * 2.0, idx)

    fc = rp.compile(rp.trace_like(f, (np.ones(4), np.array([0, 1]))))
    run_both(fc, rng.standard_normal(6), np.array([5, 0, 3, 3]))


def test_hist_and_scatter_batched_agree():
    def f(inds, vals):
        h = rp.reduce_by_index(5, lambda a, b: a + b, 0.0, inds, vals)
        s = rp.scatter(rp.zeros_like(vals), inds, vals)
        return h, s

    fc = rp.compile(rp.trace_like(f, (np.array([0, 1]), np.ones(2))))
    run_both(fc, np.array([1, 4, 2, 4, 0, 7]), rng.standard_normal(6))


def test_hist_min_max_mul_backends():
    inds = np.array([0, 1, 0, 2, 1, 0])
    vals = rng.standard_normal(6) + 2.0
    for op, ne in ((rp.maximum, -np.inf), (rp.minimum, np.inf)):
        def f(i, v, op=op, ne=ne):
            return rp.reduce_by_index(3, lambda a, b: op(a, b), ne, i, v)

        fc = rp.compile(rp.trace_like(f, (inds, vals)))
        run_both(fc, inds, vals)
    def fm(i, v):
        return rp.reduce_by_index(3, lambda a, b: a * b, 1.0, i, v)

    fc = rp.compile(rp.trace_like(fm, (inds, vals)))
    run_both(fc, inds, vals)


def test_general_scan_op_batched():
    def f(m):
        return rp.map(lambda row: rp.scan(lambda a, b: a * b + a + b, 0.0, row), m)

    fc = rp.compile(rp.trace_like(f, (np.ones((2, 3)),)))
    run_both(fc, rng.standard_normal((3, 5)) * 0.3)


def test_irregular_iota_rejected_in_vec():
    def f(ns):
        return rp.map(lambda n: rp.sum(rp.map(lambda i: rp.astype(i, rp.F64), rp.iota(n))), ns)

    fc = rp.compile(rp.trace_like(f, (np.array([1, 2]),)))
    with pytest.raises(ExecError):
        fc(np.array([1, 2, 3]), backend="vec")
    # The reference interpreter handles irregularity fine.
    out = fc(np.array([1, 2, 3]), backend="ref")
    np.testing.assert_allclose(out, [0.0, 1.0, 3.0])


def test_run_fun_vec_batched_matches_looped_runs():
    # The batched-seed driver must agree with one interpreter run per seed.
    from repro.exec.vector import run_fun_vec, run_fun_vec_batched

    def f(x, s):
        return rp.sum(rp.map(lambda a, b: rp.sin(a) * b, x, s)), rp.map(
            lambda a, b: a + b * b, x, s
        )

    fc = rp.compile(rp.trace_like(f, (np.ones(4), np.ones(4))))
    x = rng.standard_normal(4)
    seeds = rng.standard_normal((6, 4))
    batched = run_fun_vec_batched(fc.fun, (x, seeds), (False, True), 6)
    assert all(np.asarray(r).shape[0] == 6 for r in batched)
    for i in range(6):
        row = run_fun_vec(fc.fun, (x, seeds[i]))
        for got, want in zip(batched, row):
            np.testing.assert_allclose(
                np.asarray(got)[i], np.asarray(want), rtol=1e-12, atol=1e-12
            )


def test_run_fun_vec_batched_rejects_bad_batch_axis():
    def f(x):
        return rp.map(lambda a: a * 2.0, x)

    fc = rp.compile(rp.trace_like(f, (np.ones(4),)))
    from repro.exec.vector import run_fun_vec_batched

    with pytest.raises(ExecError):
        run_fun_vec_batched(fc.fun, (np.ones((3, 4)),), (True,), 5)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 7),
    m=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
def test_property_nested_pipeline_equivalence(n, m, seed):
    r = np.random.default_rng(seed)
    mat = r.standard_normal((n, m))

    def f(mm):
        def row(rr):
            s = rp.scan(lambda a, b: a + b, 0.0, rr)
            t = rp.sum(rp.map(lambda x: rp.tanh(x), s))
            return rp.cond(t > 0.0, lambda: t, lambda: t * t)

        return rp.map(row, mm)

    fc = rp.compile(rp.trace_like(f, (mat,)))
    run_both(fc, mat)
