"""DCE tests — including the paper's headline §4.1 claim: perfectly-nested
scopes introduce NO re-execution because the redundant forward sweeps are
dead code."""
import numpy as np

import repro as rp
from repro.frontend.function import Compiled
from repro.ir import count_stms, pretty
from repro.ir.ast import Map
from repro.opt.dce import dce_fun
from repro.opt.pipeline import optimize_fun
from repro.core.vjp import vjp_fun

rng = np.random.default_rng(6)


def _maps_in(fun):
    return pretty(fun).count("map (")


def test_dce_removes_unused_binding():
    def f(x):
        return x * 2.0  # the traced sin is dead

    fun = rp.trace_like(lambda x: (rp.sin(x), x * 2.0)[1], (1.0,))
    d = dce_fun(fun)
    assert count_stms(d) < count_stms(fun)


def test_dce_preserves_semantics():
    def f(xs):
        dead = rp.map(lambda x: rp.exp(x), xs)  # noqa: F841
        return rp.sum(rp.map(lambda x: x * x, xs))

    fun = rp.trace_like(f, (np.ones(4),))
    d = dce_fun(fun)
    xs = rng.standard_normal(4)
    assert Compiled(d, optimize=False)(xs) == Compiled(fun, optimize=False)(xs)
    assert _maps_in(d) < _maps_in(fun)


def test_dce_shrinks_partially_dead_map():
    def f(xs):
        a, b = rp.map(lambda x: (x * 2.0, rp.exp(x)), xs)
        return rp.sum(a)

    fun = rp.trace_like(f, (np.ones(4),))
    d = dce_fun(fun)
    # the exp column disappears
    assert "exp" not in pretty(d)


def test_perfect_nest_no_reexecution():
    """Paper §4.1 / Fig. 2: after DCE, the differentiated perfect map nest
    contains no re-executed forward-sweep statements — the adjoint program's
    operation count is a small multiple of the primal's."""
    def f(ass):
        return rp.map(lambda as_: rp.map(lambda a: a * a, as_), ass)

    fun = optimize_fun(rp.trace_like(f, (np.ones((3, 4)),)))
    raw = vjp_fun(fun)
    opt = optimize_fun(raw)
    # DCE strips the re-executed inner map of the return sweep:
    assert count_stms(opt) < count_stms(raw)
    # Cost-model check: adjoint work ≤ ~4x primal work (constant, not depth-
    # dependent — the Fig. 2 claim).
    ass = rng.standard_normal((8, 16))
    prim = Compiled(fun, optimize=False)
    adj = Compiled(opt, optimize=False)
    cp = prim.cost(ass)
    ca = adj.cost(ass, np.ones((8, 16)))
    assert ca.work <= 6 * cp.work, (ca.work, cp.work)


def test_fig2_structure_if_inside_map():
    """The full Fig. 2 shape: branch inside a map over a nested map."""
    def f(cs, ass):
        def per(c, as_):
            return rp.cond(
                c > 0.0,
                lambda: rp.map(lambda a: a + 1.0, as_),
                lambda: rp.map(lambda a: a * a, as_),
            )

        return rp.map(per, cs, ass)

    fun = optimize_fun(rp.trace_like(f, (np.ones(3), np.ones((3, 4)))))
    raw = vjp_fun(fun)
    opt = optimize_fun(raw)
    assert count_stms(opt) < count_stms(raw)
    # Semantics preserved after DCE:
    cs = rng.standard_normal(3)
    ass = rng.standard_normal((3, 4))
    seed = rng.standard_normal((3, 4))
    r1 = Compiled(raw, optimize=False)(cs, ass, seed)
    r2 = Compiled(opt, optimize=False)(cs, ass, seed)
    for a, b in zip(r1, r2):
        np.testing.assert_allclose(np.asarray(a), np.asarray(b))
