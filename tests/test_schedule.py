"""Schedule IR: directive parsing/formatting, legality, strict and lenient
application, bitwise backend parity for every legal schedule (property-based
over the fuzz corpus), explicit-directive consumption by ``parallel_split``,
the loop ``sequential(f)·sequential`` strip-mine sugar, bounded process-pool
degradation, codegen shipping to process workers, and schedule strings in
the profiler report."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro as rp
from repro.exec.plan import plan_for
from repro.exec.shard import (
    reset_shard_stats,
    shard_stats,
    shutdown_shard_pool,
)
from repro.frontend.function import Compiled
from repro.ir.analysis import parallel_split
from repro.ir.ast import Loop, Map, Reduce
from repro.ir.schedule import (
    Parallel,
    SCHEDULABLE,
    ScheduleError,
    Sequential,
    Vectorized,
    apply_schedule,
    check_schedule,
    default_schedule,
    format_schedule,
    parse_schedule,
)

from test_fuzz_programs import _gen_program


def _trace(prog, *args):
    return rp.trace_like(prog, args)


def _map_prog(xs):
    return rp.map(lambda x: rp.sin(x) * x + rp.exp(-x), xs)


def _reduce_prog(xs):
    return rp.sum(rp.map(lambda x: rp.sin(x) * x + rp.exp(-x), xs))


# ---------------------------------------------------------------------------
# Parsing / formatting
# ---------------------------------------------------------------------------


def test_parse_format_round_trip():
    for text, sched in [
        ("vectorized", (Vectorized(),)),
        ("parallel", (Parallel(),)),
        ("parallel(2)", (Parallel(2),)),
        ("sequential", (Sequential(),)),
        ("sequential(64)", (Sequential(64),)),
        ("parallel(2)·vectorized", (Parallel(2), Vectorized())),
        ("sequential(4)·sequential", (Sequential(4), Sequential())),
    ]:
        assert parse_schedule(text) == sched
        assert format_schedule(sched) == text
        # the round trip is stable
        assert parse_schedule(format_schedule(sched)) == sched


def test_parse_accepts_ascii_separators():
    assert parse_schedule("parallel(2) vectorized") == (Parallel(2), Vectorized())
    assert parse_schedule("sequential(4);sequential") == (
        Sequential(4),
        Sequential(),
    )


def test_parse_rejects_junk_and_vectorized_arg():
    with pytest.raises(ScheduleError, match="unrolled"):
        parse_schedule("unrolled(4)")
    with pytest.raises(ScheduleError, match="vectorized"):
        parse_schedule("vectorized(3)")
    assert parse_schedule("") == ()


# ---------------------------------------------------------------------------
# Legality
# ---------------------------------------------------------------------------


def test_structural_legality_names_the_directive():
    xs = np.ones(8)
    fun = rp.compile(_trace(_map_prog, xs)).fun
    m = next(s.exp for s in fun.body.stms if isinstance(s.exp, Map))
    # two parallels
    r = check_schedule(m, (Parallel(2), Parallel(2)))
    assert r is not None and "parallel" in r
    # parallel not outermost
    r = check_schedule(m, (Vectorized(), Parallel(2)))
    assert r is not None and "parallel" in r
    # vectorized not innermost
    r = check_schedule(m, (Vectorized(), Sequential()))
    assert r is not None and "vectorized" in r
    # legal ones pass
    assert check_schedule(m, (Vectorized(),)) is None
    assert check_schedule(m, (Sequential(8), Vectorized())) is None
    assert check_schedule(m, (Parallel(2), Vectorized())) is None


def test_loop_only_takes_sequential():
    fun = _trace(lambda x: rp.fori_loop(10, lambda i, a: a * 0.5 + x, x), 1.0)
    fc = Compiled(fun)
    lp = next(s.exp for s in fc.fun.body.stms if isinstance(s.exp, Loop))
    r = check_schedule(lp, (Parallel(2),))
    assert r is not None and "parallel" in r
    r = check_schedule(lp, (Vectorized(),))
    assert r is not None and "vectorized" in r
    assert check_schedule(lp, (Sequential(),)) is None
    assert check_schedule(lp, (Sequential(4), Sequential())) is None


def test_reduce_rejects_chunked_sequential():
    xs = np.ones(8)
    fun = rp.compile(_trace(_reduce_prog, xs)).fun
    red = next(s.exp for s in fun.body.stms if isinstance(s.exp, Reduce))
    r = check_schedule(red, (Sequential(8), Vectorized()))
    assert r is not None and "sequential(8)" in r
    assert check_schedule(red, (Sequential(),)) is None


def test_illegal_schedule_raises_loudly_at_compile():
    fun = _trace(lambda x: rp.fori_loop(10, lambda i, a: a * 0.5 + x, x), 1.0)
    with pytest.raises(ScheduleError, match="parallel"):
        rp.compile(fun, schedule="parallel(2)")


# ---------------------------------------------------------------------------
# Bitwise parity: every legal schedule is the default program
# ---------------------------------------------------------------------------

_SCHEDULES = [
    (Sequential(),),
    (Sequential(3),),
    (Sequential(7), Vectorized()),
    (Vectorized(),),
    (Parallel(2), Vectorized()),
    (Parallel(), Sequential(5), Vectorized()),
]


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n=st.integers(1, 9),
    dseed=st.integers(0, 10**6),
    si=st.integers(0, len(_SCHEDULES) - 1),
)
def test_fuzz_legal_schedules_bitwise_equal_default(seed, n, dseed, si):
    """Any legal schedule annotation leaves every backend's result bitwise
    identical to the default schedule (schedules choose *how*, never
    *what*)."""
    prog = _gen_program(seed)
    xs = np.random.default_rng(dseed).standard_normal(n) * 0.8
    base = rp.compile(rp.trace_like(prog, (xs,)))
    # lenient: annotate wherever legal; identity when nowhere legal
    forced = Compiled(
        apply_schedule(base.fun, _SCHEDULES[si], strict=False), optimize=False
    )
    for be in ("ref", "vec", "plan", "codegen"):
        np.testing.assert_array_equal(
            np.asarray(base(xs, backend=be)),
            np.asarray(forced(xs, backend=be)),
            err_msg=f"schedule {format_schedule(_SCHEDULES[si])} on {be}",
        )


def test_shard_worker_count_invariance_under_parallel_schedule(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_MODE", "thread")
    monkeypatch.setenv("REPRO_SHARD_MIN_CHUNK", "4")
    xs = np.random.default_rng(7).standard_normal(64)
    fun = _trace(_reduce_prog, xs)
    fc = rp.compile(fun, schedule="parallel·vectorized")
    try:
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "1")
        r1 = np.asarray(fc(xs, backend="shard"))
        shutdown_shard_pool()
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "3")
        r3 = np.asarray(fc(xs, backend="shard"))
        np.testing.assert_array_equal(r1, r3)
        np.testing.assert_array_equal(r3, np.asarray(fc(xs, backend="plan")))
    finally:
        shutdown_shard_pool()


# ---------------------------------------------------------------------------
# Explicit-directive consumption and the loop sugar
# ---------------------------------------------------------------------------


def test_parallel_split_consumes_explicit_directive():
    xs = np.ones(32)
    fc = rp.compile(_trace(_reduce_prog, xs), schedule="parallel(3)·vectorized")
    split = parallel_split(fc.fun)
    assert split is not None
    assert split.workers == 3
    assert "parallel" in split.schedule_str
    # the Parallel directive is realised by the split, not re-lowered
    chunk_stm = split.chunk_fun.body.stms[0].exp
    assert not any(isinstance(d, Parallel) for d in chunk_stm.schedule)


def test_loop_sequential_sugar_sets_stripmine():
    fun = _trace(lambda x: rp.fori_loop(12, lambda i, a: a * 0.9 + x, x), 1.0)
    fc = rp.compile(fun, schedule="sequential(4)·sequential")
    loops = [s.exp for s in fc.fun.body.stms if isinstance(s.exp, Loop)]
    assert loops and loops[0].stripmine == 4
    r0 = rp.compile(fun)(1.0, backend="plan")
    r1 = fc(1.0, backend="plan")
    np.testing.assert_allclose(np.asarray(r0), np.asarray(r1))


def test_env_schedule_applies_leniently(monkeypatch):
    xs = np.linspace(0.0, 2.0, 23)
    fun = _trace(_map_prog, xs)
    base = rp.compile(fun)
    monkeypatch.setenv("REPRO_SCHEDULE", "sequential(8)")
    forced = rp.compile(fun)
    stms = [s.exp for s in forced.fun.body.stms if isinstance(s.exp, SCHEDULABLE)]
    assert any(e.schedule == (Sequential(8),) for e in stms)
    for be in ("plan", "codegen"):
        np.testing.assert_array_equal(
            np.asarray(base(xs, backend=be)), np.asarray(forced(xs, backend=be))
        )


def test_default_schedule_shapes():
    xs = np.ones(8)
    fun = rp.compile(_trace(_map_prog, xs)).fun
    m = next(s.exp for s in fun.body.stms if isinstance(s.exp, Map))
    assert default_schedule(m) == (Vectorized(),)
    lfun = Compiled(
        _trace(lambda x: rp.fori_loop(10, lambda i, a: a * 0.5 + x, x), 1.0)
    ).fun
    lp = next(s.exp for s in lfun.body.stms if isinstance(s.exp, Loop))
    assert default_schedule(lp) == (Sequential(),)


# ---------------------------------------------------------------------------
# Process mode: bounded degradation + codegen shipping
# ---------------------------------------------------------------------------


def test_process_degradation_is_bounded_and_resettable(monkeypatch):
    from concurrent.futures import BrokenExecutor

    from repro.exec import shard

    monkeypatch.setenv("REPRO_SHARD_MODE", "process")
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
    monkeypatch.setenv("REPRO_SHARD_MIN_CHUNK", "4")
    monkeypatch.setenv("REPRO_SHARD_RETRY_AFTER", "2")

    def boom(*a, **k):
        raise BrokenExecutor("injected pool failure")

    monkeypatch.setattr(shard, "_dispatch_process", boom)
    xs = np.random.default_rng(3).standard_normal(48)
    fc = rp.compile(_trace(_reduce_prog, xs))
    want = np.asarray(fc(xs, backend="plan"))
    reset_shard_stats()
    try:
        for _ in range(6):
            np.testing.assert_array_equal(
                np.asarray(fc(xs, backend="shard")), want
            )
        st = shard_stats()
        # call 1 probes and fails; after 2 degraded calls the pool is
        # re-probed (fails again, doubling the backoff), then degraded again
        assert st["pool_errors"] >= 2
        assert st["process_retries"] >= 1
        assert st["process_degraded_calls"] >= 2
        assert st["process_degraded"] is True
        shard.reset_shard_degradation()
        assert shard_stats()["process_degraded"] is False
    finally:
        reset_shard_stats()
        shutdown_shard_pool()


def test_process_mode_ships_codegen_source(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_MODE", "process")
    monkeypatch.setenv("REPRO_SHARD_EMITTER", "codegen")
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
    monkeypatch.setenv("REPRO_SHARD_MIN_CHUNK", "4")
    monkeypatch.setenv("REPRO_SHARD_SHM_MIN", "0")
    reset_shard_stats()
    try:
        xs = np.random.default_rng(5).standard_normal(64)
        fc = rp.compile(_trace(_map_prog, xs))
        np.testing.assert_array_equal(
            fc(xs, backend="shard"), fc(xs, backend="plan")
        )
        st = shard_stats()
        if st["pool_errors"]:
            pytest.skip("process pool unavailable in this environment")
        assert st["sharded_calls"] == 1 and st["chunks"] >= 2
        # repeat call: worker-side plan cache hit, still bitwise
        np.testing.assert_array_equal(
            fc(xs, backend="shard"), fc(xs, backend="plan")
        )
    finally:
        shutdown_shard_pool()


def test_codegen_payload_round_trip():
    import pickle

    from repro.exec.codegen import ShippedCodegenPlan, codegen_payload

    xs = np.linspace(0.0, 1.0, 17)
    fc = rp.compile(_trace(_reduce_prog, xs))
    payload = codegen_payload(fc.fun)
    # memoised by identity
    assert codegen_payload(fc.fun) is payload
    shipped = ShippedCodegenPlan(pickle.loads(pickle.dumps(payload)))
    want = plan_for(fc.fun, (xs,), None, emitter="codegen").run((xs,))
    got = shipped.run((xs,))
    assert len(want) == len(got)
    for a, b in zip(want, got):
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b))


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


def test_profile_report_carries_schedule():
    from repro.obs.profiler import profile_report, reset_profile

    xs = np.linspace(0.0, 2.0, 29)
    fc = rp.compile(_trace(_map_prog, xs), schedule="sequential(8)·vectorized")
    reset_profile()
    plan_for(fc.fun, (xs,), None, emitter="profile").run((xs,))
    rep = profile_report()
    scheds = [e["schedule"] for e in rep["entries"] if e["schedule"]]
    assert any("sequential(8)" in s for s in scheds)


def test_shard_chunk_spans_carry_schedule(monkeypatch):
    from repro.obs import tracing

    monkeypatch.setenv("REPRO_SHARD_MODE", "thread")
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
    monkeypatch.setenv("REPRO_SHARD_MIN_CHUNK", "4")
    xs = np.random.default_rng(11).standard_normal(32)
    fc = rp.compile(_trace(_reduce_prog, xs), schedule="parallel(2)·vectorized")
    try:
        with tracing.collecting():
            fc(xs, backend="shard")
            chunks = [
                ev
                for ev in tracing.events()
                if ev["ph"] == "B" and ev["name"] == "shard:chunk"
            ]
        assert chunks
        assert all(
            "parallel" in (ev["args"].get("schedule") or "") for ev in chunks
        )
    finally:
        shutdown_shard_pool()
