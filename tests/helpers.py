"""Shared test utilities: finite differences, gradient checking, dual-backend
execution, and jvp/vjp consistency checks."""
from __future__ import annotations

from typing import Sequence

import numpy as np

import repro as rp

#: Every registered backend takes part in the parity checks; ``shard``
#: mostly falls back to ``plan`` at test sizes (extents below
#: ``REPRO_SHARD_MIN_CHUNK``), which still exercises its dispatch and
#: analysis paths — ``tests/test_exec_shard.py`` lowers the chunking
#: threshold to force genuine multi-worker execution.  ``codegen`` shares
#: the plan lowering and must match ``plan`` *bitwise* (asserted below),
#: not merely to tolerance.
BACKENDS = ("ref", "vec", "plan", "codegen", "shard")


def run_both(fc, *args):
    """Run a compiled function on every backend and assert agreement with
    the reference interpreter; ``codegen`` must additionally be bitwise
    identical to ``plan`` (same lowering, same NumPy call sequence)."""
    r_ref = fc(*args, backend="ref")
    rr = r_ref if isinstance(r_ref, tuple) else (r_ref,)
    by_backend = {}
    for be in BACKENDS[1:]:
        r_be = fc(*args, backend=be)
        rv = r_be if isinstance(r_be, tuple) else (r_be,)
        by_backend[be] = rv
        assert len(rr) == len(rv), f"backend {be}: result arity mismatch"
        for a, b in zip(rr, rv):
            np.testing.assert_allclose(
                np.asarray(a), np.asarray(b), rtol=1e-10, atol=1e-10,
                err_msg=f"backend {be} disagrees with ref",
            )
    for a, b in zip(by_backend["plan"], by_backend["codegen"]):
        np.testing.assert_array_equal(
            np.asarray(a), np.asarray(b),
            err_msg="codegen is not bitwise identical to plan",
        )
    return r_ref


def fd_grad(fc, args, k: int, eps: float = 1e-6):
    """Central-difference gradient of a scalar-valued compiled function with
    respect to float argument ``k``."""
    a = np.array(args[k], dtype=float)
    out = np.zeros_like(a)
    it = np.nditer(a, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        ap = [np.array(x, dtype=float) if np.asarray(x).dtype.kind == "f" else x for x in args]
        am = [np.array(x, dtype=float) if np.asarray(x).dtype.kind == "f" else x for x in args]
        ap[k][idx] += eps
        am[k][idx] -= eps
        out[idx] = (fc(*ap) - fc(*am)) / (2 * eps)
    return out


def check_grad(f, args, tol: float = 1e-4, wrt=None, backends=BACKENDS):
    """Trace ``f``, compute its reverse-mode gradient, and compare against
    central differences on every float argument and both backends."""
    fun = rp.trace_like(f, args)
    fc = rp.compile(fun)
    g = rp.grad(fc, wrt=wrt)
    float_idx = [
        i for i, a in enumerate(args)
        if np.asarray(a).dtype.kind == "f" and (wrt is None or i in wrt)
    ]
    for be in backends:
        ga = g(*args, backend=be)
        ga = ga if isinstance(ga, tuple) else (ga,)
        for slot, k in enumerate(float_idx):
            fd = fd_grad(fc, args, k)
            np.testing.assert_allclose(
                np.asarray(ga[slot]), fd, rtol=tol, atol=tol,
                err_msg=f"grad mismatch: backend={be} arg={k}",
            )
    return fc, g


def check_jvp_vjp_consistency(f, args, seed: int = 0, tol: float = 1e-9):
    """⟨ȳ, J·ẋ⟩ must equal ⟨Jᵀ·ȳ, ẋ⟩ for random ẋ, ȳ."""
    rng = np.random.default_rng(seed)
    fun = rp.trace_like(f, args)
    fc = rp.compile(fun)
    fwd = rp.jvp(fc)
    rev = rp.vjp(fc)
    n_out = len(fun.body.result)
    tangents = [
        rng.standard_normal(np.asarray(a).shape)
        for a in args
        if np.asarray(a).dtype.kind == "f"
    ]
    out_f = fwd(*args, *tangents)
    out_f = out_f if isinstance(out_f, tuple) else (out_f,)
    primals, dys = out_f[:n_out], out_f[n_out:]
    seeds = [
        rng.standard_normal(np.asarray(p).shape)
        for p in primals
        if np.asarray(p).dtype.kind == "f"
    ]
    out_r = rev(*args, *seeds)
    out_r = out_r if isinstance(out_r, tuple) else (out_r,)
    xbars = out_r[n_out:]
    lhs = sum(float((np.asarray(s) * np.asarray(d)).sum()) for s, d in zip(seeds, dys))
    rhs = sum(float((np.asarray(xb) * np.asarray(t)).sum()) for xb, t in zip(xbars, tangents))
    assert abs(lhs - rhs) <= tol * max(1.0, abs(lhs), abs(rhs)), (lhs, rhs)
