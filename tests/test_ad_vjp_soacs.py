"""Reverse-mode AD of the parallel combinators (paper §5 rewrite rules)."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro as rp
from helpers import check_grad, check_jvp_vjp_consistency

rng = np.random.default_rng(4)


# ---------------------------------------------------------------------------
# map (§5.4): params, free scalars, free arrays → accumulators
# ---------------------------------------------------------------------------


def test_map_param_adjoints():
    check_grad(lambda xs, ys: rp.sum(rp.map(lambda x, y: x * y, xs, ys)),
               (rng.standard_normal(5), rng.standard_normal(5)))


def test_map_free_scalar():
    check_grad(lambda xs, w: rp.sum(rp.map(lambda x: w * x * x, xs)),
               (rng.standard_normal(5), np.array(0.8)))


def test_map_free_array_gather():
    def f(xs, tbl):
        def body(x):
            i = rp.astype(rp.floor(abs(x)), rp.I64) % 4
            return x * tbl[i]

        return rp.sum(rp.map(body, xs))

    check_grad(f, (rng.standard_normal(7) * 3, rng.standard_normal(4)))


def test_map_array_used_as_arg_and_free():
    # xs appears both as the mapped array and as an indexed free variable.
    def f(xs):
        return rp.sum(rp.map(lambda x: x * xs[0], xs))

    check_grad(f, (rng.standard_normal(4),))


def test_nested_maps_matmul_pattern():
    def f(a, b):
        return rp.sum(rp.map(lambda r: rp.sum(rp.map(
            lambda j: rp.sum(rp.map(lambda k: r[k] * b[k, j], rp.iota(rp.size(b, 0)))),
            rp.iota(rp.size(b, 1)))), a))

    check_grad(f, (rng.standard_normal((3, 4)), rng.standard_normal((4, 2))))


def test_matmul_adjoint_closed_form():
    A = rng.standard_normal((4, 3))
    B = rng.standard_normal((3, 5))
    S = rng.standard_normal((4, 5))
    f = rp.compile(rp.trace_like(lambda a, b: rp.matmul(a, b), (A, B)))
    rev = rp.vjp(f)
    _, dA, dB = rev(A, B, S)
    np.testing.assert_allclose(dA, S @ B.T, rtol=1e-10)
    np.testing.assert_allclose(dB, A.T @ S, rtol=1e-10)


def test_multi_result_map():
    def f(xs):
        a, b = rp.map(lambda x: (x * x, rp.sin(x)), xs)
        return rp.sum(a) + 2.0 * rp.sum(b)

    check_grad(f, (rng.standard_normal(5),))


# ---------------------------------------------------------------------------
# reduce (§5.1): special cases and the general two-scan rule
# ---------------------------------------------------------------------------


def test_reduce_add():
    check_grad(lambda xs: rp.sum(xs) * 2.0, (rng.standard_normal(6),))


def test_reduce_mul_no_zeros():
    check_grad(lambda xs: rp.prod(xs), (rng.standard_normal(5) + 2.0,))


def test_reduce_mul_one_zero():
    xs = rng.standard_normal(5) + 2.0
    xs[2] = 0.0
    check_grad(lambda v: rp.prod(v), (xs,))


def test_reduce_mul_two_zeros():
    xs = rng.standard_normal(5) + 2.0
    xs[1] = 0.0
    xs[3] = 0.0
    fc, g = check_grad(lambda v: rp.prod(v), (xs,))
    np.testing.assert_allclose(g(xs), np.zeros(5))  # all adjoints vanish


def test_reduce_min_max():
    check_grad(lambda xs: rp.max(xs) * 2.0, (rng.standard_normal(6),))
    check_grad(lambda xs: rp.min(xs) * 2.0, (rng.standard_normal(6),))


def test_reduce_max_ties_single_winner():
    xs = np.array([1.0, 3.0, 3.0, 0.5])
    f = rp.compile(rp.trace_like(lambda v: rp.max(v), (xs,)))
    g = rp.grad(f)(xs)
    # exactly one element receives the adjoint (the first max)
    np.testing.assert_allclose(g, [0.0, 1.0, 0.0, 0.0])


def test_reduce_general_operator():
    check_grad(
        lambda xs: rp.reduce(lambda a, b: a * b + a + b, 0.0, xs),
        (rng.standard_normal(6) * 0.3,),
    )


def test_reduce_general_matches_special():
    # The general rule specialises to as_bar += ybar for (+).
    xs = rng.standard_normal(8)
    # force general path with an opaque formulation of addition
    f1 = rp.compile(rp.trace_like(lambda v: rp.reduce(lambda a, b: a + b * 1.0, 0.0, v), (xs,)))
    g1 = rp.grad(f1)(xs)
    np.testing.assert_allclose(g1, np.ones(8), rtol=1e-10)


# ---------------------------------------------------------------------------
# scan (§5.2)
# ---------------------------------------------------------------------------


def test_scan_add_special():
    def f(xs):
        return rp.sum(rp.map(lambda v: v * v, rp.scan(lambda a, b: a + b, 0.0, xs)))

    check_grad(f, (rng.standard_normal(6),))


def test_scan_general_linear_recurrence():
    def f(xs):
        s = rp.scan(lambda a, b: a * b + a + b, 0.0, xs)
        return rp.sum(rp.map(lambda v: v * v, s))

    check_grad(f, (rng.standard_normal(6) * 0.2,))


def test_scan_mul():
    def f(xs):
        s = rp.scan(lambda a, b: a * b, 1.0, xs)
        return rp.sum(s)

    check_grad(f, (rng.standard_normal(5) + 1.5,))


def test_scan_length_one():
    check_grad(lambda xs: rp.sum(rp.scan(lambda a, b: a + b, 0.0, xs)), (np.array([2.0]),))


# ---------------------------------------------------------------------------
# reduce_by_index (§5.1.2)
# ---------------------------------------------------------------------------


def test_hist_add():
    def f(xs, inds):
        h = rp.reduce_by_index(4, lambda a, b: a + b, 0.0, inds, xs)
        return rp.sum(rp.map(lambda v: v * v, h))

    check_grad(f, (rng.standard_normal(8), rng.integers(0, 4, 8)))


def test_hist_add_out_of_range_dropped():
    def f(xs, inds):
        h = rp.reduce_by_index(3, lambda a, b: a + b, 0.0, inds, xs)
        return rp.sum(h)

    inds = np.array([0, 5, 1, -1])
    fc, g = check_grad(f, (rng.standard_normal(4), inds))
    np.testing.assert_allclose(g(rng.standard_normal(4), inds), [1.0, 0.0, 1.0, 0.0])


def test_hist_min_max():
    inds = rng.integers(0, 4, 10)
    def fmax(xs, i):
        h = rp.reduce_by_index(4, lambda a, b: rp.maximum(a, b), -np.inf, i, xs)
        return rp.sum(rp.map(lambda v: rp.where(v > -1e30, v * v, 0.0), h))

    check_grad(fmax, (rng.standard_normal(10), inds))


def test_hist_mul():
    def f(xs, inds):
        h = rp.reduce_by_index(3, lambda a, b: a * b, 1.0, inds, xs)
        return rp.sum(rp.map(lambda v: v * v, h))

    check_grad(f, (rng.standard_normal(8) + 1.5, rng.integers(0, 3, 8)))


def test_hist_general_operator():
    """The sort + segmented-scan rule (paper's 'work in progress', §5.1.2),
    implemented here as an extension: arbitrary associative & commutative
    operators differentiate correctly."""
    def f(xs, inds):
        h = rp.reduce_by_index(3, lambda a, b: a * b + a + b, 0.0, inds, xs)
        return rp.sum(rp.map(lambda v: v * v, h))

    check_grad(f, (rng.standard_normal(8) * 0.4, rng.integers(0, 3, 8)))


def test_hist_general_operator_out_of_range_and_empty_bins():
    def f(xs, inds):
        h = rp.reduce_by_index(4, lambda a, b: a * b + a + b, 0.0, inds, xs)
        return rp.sum(rp.map(lambda v: v * v, h))

    inds = np.array([0, 2, 0, 7, -1, 2])  # bins 1 and 3 empty; 2 dropped
    check_grad(f, (rng.standard_normal(6) * 0.4, inds))


def test_hist_general_matches_special_for_addition():
    # Force the general path with an opaque (+) and compare to the special.
    xs = rng.standard_normal(7)
    inds = rng.integers(0, 3, 7)

    def f_gen(v, i):
        h = rp.reduce_by_index(3, lambda a, b: rp.minimum(a + b, 1e300), 0.0, i, v)
        return rp.sum(rp.map(lambda x: x * x, h))

    def f_spec(v, i):
        h = rp.reduce_by_index(3, lambda a, b: a + b, 0.0, i, v)
        return rp.sum(rp.map(lambda x: x * x, h))

    g1 = rp.grad(rp.compile(rp.trace_like(f_gen, (xs, inds))), wrt=[0])(xs, inds)
    g2 = rp.grad(rp.compile(rp.trace_like(f_spec, (xs, inds))), wrt=[0])(xs, inds)
    np.testing.assert_allclose(g1, g2, rtol=1e-10)


# ---------------------------------------------------------------------------
# scatter (§5.3)
# ---------------------------------------------------------------------------


def test_scatter_adjoints():
    def f(xs, vals, inds):
        ys = rp.scatter(xs, inds, vals)
        return rp.sum(rp.map(lambda v: v * v * 0.5, ys))

    check_grad(f, (rng.standard_normal(6), rng.standard_normal(3), np.array([1, 4, 2])))


def test_scatter_overwritten_slots_zeroed():
    xs = rng.standard_normal(4)
    vals = rng.standard_normal(2)
    inds = np.array([1, 3])
    f = rp.compile(rp.trace_like(lambda x, v, i: rp.sum(rp.scatter(x, i, v)), (xs, vals, inds)))
    rev = rp.vjp(f, wrt=[0, 1])
    _, dxs, dvals = rev(xs, vals, inds, 1.0)
    np.testing.assert_allclose(dxs, [1.0, 0.0, 1.0, 0.0])
    np.testing.assert_allclose(dvals, [1.0, 1.0])


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(2, 9))
def test_property_jvp_vjp_consistency_soac_pipeline(seed, n):
    r = np.random.default_rng(seed)
    xs = r.standard_normal(n) * 0.5
    inds = r.integers(0, 3, n)

    def f(v, i):
        h = rp.reduce_by_index(3, lambda a, b: a + b, 0.0, i, v)
        s = rp.scan(lambda a, b: a + b, 0.0, v)
        return rp.sum(rp.map(lambda a, b: a * b, h, rp.map(lambda x: x + 1.0, h))) + rp.sum(s)

    check_jvp_vjp_consistency(f, (xs, inds), seed=seed)
