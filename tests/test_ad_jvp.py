"""Forward-mode AD vs finite differences, construct by construct."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro as rp
from repro.exec import run_fun
from repro.core.jvp import jvp_fun
from repro.opt.pipeline import optimize_fun

rng = np.random.default_rng(2)


def _jvp_check(f, args, tol=1e-5, eps=1e-7):
    fun = rp.trace_like(f, args)
    fc = rp.compile(fun)
    fwd = rp.jvp(fc)
    floats = [i for i, a in enumerate(args) if np.asarray(a).dtype.kind == "f"]
    tangents = [rng.standard_normal(np.asarray(args[i]).shape) for i in floats]
    out = fwd(*args, *tangents)
    out = out if isinstance(out, tuple) else (out,)
    n_out = len(fun.body.result)
    dys = out[n_out:]
    # central differences along the chosen direction
    ap = [np.array(a, dtype=float) if np.asarray(a).dtype.kind == "f" else a for a in args]
    am = [np.array(a, dtype=float) if np.asarray(a).dtype.kind == "f" else a for a in args]
    for slot, i in enumerate(floats):
        ap[i] = ap[i] + eps * tangents[slot]
        am[i] = am[i] - eps * tangents[slot]
    rp_ = fc(*ap)
    rm_ = fc(*am)
    rp_ = rp_ if isinstance(rp_, tuple) else (rp_,)
    rm_ = rm_ if isinstance(rm_, tuple) else (rm_,)
    fd = [(np.asarray(a) - np.asarray(b)) / (2 * eps) for a, b in zip(rp_, rm_)
          if np.asarray(a).dtype.kind == "f"]
    for d, n in zip(dys, fd):
        np.testing.assert_allclose(np.asarray(d), n, rtol=tol, atol=tol)


def test_jvp_scalar_chain():
    _jvp_check(lambda x0, x1: (x1 * rp.sin(x0), x0 * x1), (0.5, 0.7))


def test_jvp_all_unops():
    _jvp_check(
        lambda x: rp.sin(x) + rp.cos(x) + rp.exp(x) + rp.tanh(x) + rp.sigmoid(x) + rp.erf(x),
        (0.3,),
    )
    _jvp_check(lambda x: rp.log(x) + rp.sqrt(x), (1.7,))


def test_jvp_binops():
    _jvp_check(lambda x, y: x / y + x**y + rp.minimum(x, y) + rp.maximum(x, y), (1.3, 2.1))


def test_jvp_map_reduce():
    _jvp_check(lambda xs: rp.sum(rp.map(lambda x: x * x * x, xs)), (rng.standard_normal(6),))


def test_jvp_scan_hist_scatter():
    def f(xs, inds):
        s = rp.scan(lambda a, b: a + b, 0.0, xs)
        h = rp.reduce_by_index(4, lambda a, b: a + b, 0.0, inds, xs)
        sc = rp.scatter(rp.zeros_like(xs), inds, s)
        return rp.sum(s) + 2.0 * rp.sum(h) + rp.sum(sc)

    _jvp_check(f, (rng.standard_normal(5), np.array([0, 1, 2, 3, 1])))


def test_jvp_loop_if():
    def f(xs):
        def step(x):
            y = rp.cond(x > 0.0, lambda: rp.exp(x), lambda: x * x)
            return rp.fori_loop(3, lambda i, a: a * 0.5 + y, y)

        return rp.sum(rp.map(step, xs))

    _jvp_check(f, (rng.standard_normal(6),))


def test_jvp_general_reduce_operator():
    _jvp_check(
        lambda xs: rp.reduce(lambda a, b: a * b + a + b, 0.0, xs),
        (rng.standard_normal(5) * 0.3,),
    )


def test_jvp_while_loop():
    def f(x):
        v, s = rp.while_loop(
            lambda v, s: v < 10.0, lambda v, s: (v * 1.5, s + v), (x, 0.0)
        )
        return s

    _jvp_check(f, (0.7,))


def test_jvp_update_index():
    def f(xs):
        ys = rp.update(xs, 1, xs[0] * 3.0)
        return rp.sum(rp.map(lambda y: y * y, ys))

    _jvp_check(f, (rng.standard_normal(4),))


def test_jvp_result_count_and_types():
    fun = rp.trace_like(lambda x, n: (x * 2.0, n + 1), (1.0, np.int64(3)))
    out = jvp_fun(fun)
    # params: x, n, dx; results: y, m, dy
    assert len(out.params) == 3
    assert len(out.body.result) == 3


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(1, 8))
def test_jvp_linearity_property(seed, n):
    """jvp is linear in the tangent: f'(x)(a·u) = a·f'(x)(u)."""
    r = np.random.default_rng(seed)
    xs = r.standard_normal(n)
    u = r.standard_normal(n)
    f = lambda v: rp.sum(rp.map(lambda x: rp.tanh(x) * x, v))
    fwd = rp.jvp(rp.compile(rp.trace_like(f, (xs,))))
    _, d1 = fwd(xs, u)
    _, d2 = fwd(xs, 2.5 * u)
    np.testing.assert_allclose(2.5 * d1, d2, rtol=1e-12)
