"""Pytest configuration: make tests/helpers.py importable and keep
hypothesis deadlines off (interpreted executors are slow but deterministic)."""
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
