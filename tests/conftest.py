"""Pytest configuration: make tests/helpers.py importable, keep hypothesis
deadlines off (interpreted executors are slow but deterministic), and pin
the shard executor to 2 workers so CI boxes are never oversubscribed
(individual shard tests override the env knobs with monkeypatch)."""
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

os.environ.setdefault("REPRO_SHARD_WORKERS", "2")

# Stage-boundary IR verification is on by default under pytest (the prod
# default is "off"); CI additionally runs one leg with REPRO_VERIFY=full.
os.environ.setdefault("REPRO_VERIFY", "boundary")
