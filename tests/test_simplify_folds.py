"""Exactness of compile-time constant folding (`opt/simplify.py`).

Folds must compute precisely what the executors would at runtime — under
the same ``np.errstate(all="ignore")`` — so a folded program and its
unoptimised twin agree bitwise on every backend even for div-by-zero,
overflow, and NaN-propagating inputs.  Only arithmetic failures demote a
fold to "don't fold"; anything else (unknown ops, bad types) propagates.
"""
import numpy as np
import pytest

import repro as rp

BACKENDS = ("ref", "vec", "plan")

#: Each case builds constants the tracer cannot evaluate eagerly (via
#: ``x*0``) so the fold happens in ``simplify``, not at trace time.
_FOLD_CASES = [
    ("float_div_zero", lambda x: (x * 0.0 + 1.0) / (x * 0.0)),          # inf
    ("float_neg_div_zero", lambda x: (x * 0.0 - 1.0) / (x * 0.0)),      # -inf
    ("float_zero_div_zero", lambda x: (x * 0.0) / (x * 0.0)),           # nan
    ("overflow_mul", lambda x: (x * 0.0 + 1e308) * 10.0),               # inf
    ("exp_overflow", lambda x: rp.exp(x * 0.0 + 1000.0)),               # inf
    ("log_zero", lambda x: rp.log(x * 0.0)),                            # -inf
    ("log_neg", lambda x: rp.log(x * 0.0 - 1.0)),                       # nan
    ("sqrt_neg", lambda x: rp.sqrt(x * 0.0 - 4.0)),                     # nan
    ("pow_frac_neg", lambda x: (x * 0.0 - 2.0) ** 0.5),                 # nan
    ("nan_propagates_add", lambda x: ((x * 0.0) / (x * 0.0)) + 3.0),    # nan
    ("nan_propagates_mul", lambda x: ((x * 0.0) / (x * 0.0)) * 0.0),    # nan
]


@pytest.mark.parametrize("name,f", _FOLD_CASES, ids=[c[0] for c in _FOLD_CASES])
def test_folds_match_runtime_on_every_backend(name, f):
    fun = rp.trace_like(f, (1.0,))
    fo = rp.compile(fun, optimize=True)
    fr = rp.compile(fun, optimize=False)
    # these folds must actually fire (the old blanket `except Exception`
    # silently demoted several of them to "don't fold")
    assert len(fo.fun.body.stms) == 0, "expected the expression to fold away"
    for be in BACKENDS:
        a = np.asarray(fo(2.0, backend=be))
        b = np.asarray(fr(2.0, backend=be))
        np.testing.assert_array_equal(a, b, err_msg=f"{name} on {be}")


def test_integer_div_and_mod_by_zero_fold_like_runtime():
    for f in (lambda i: (i * 0 + 1) / (i * 0), lambda i: (i * 0 + 1) % (i * 0)):
        fun = rp.trace_like(f, (np.int64(3),))
        fo = rp.compile(fun, optimize=True)
        fr = rp.compile(fun, optimize=False)
        for be in BACKENDS:
            assert fo(np.int64(3), backend=be) == fr(np.int64(3), backend=be)


def test_cast_of_inf_to_int_folds_like_runtime():
    # np.int64(inf) raises, but the executors' astype produces a value: the
    # fold must go through the same astype, not the scalar constructor.
    fun = rp.trace_like(lambda x: rp.astype(x * 0.0 + 1e308 * 10.0, rp.I64), (1.0,))
    fo = rp.compile(fun, optimize=True)
    fr = rp.compile(fun, optimize=False)
    assert len(fo.fun.body.stms) == 0
    for be in BACKENDS:
        assert fo(1.0, backend=be) == fr(1.0, backend=be)


def test_folded_gradients_survive_nonfinite_constants():
    # AD through a program with a folded non-finite constant: both the
    # optimised and raw pipelines must agree (nan/inf included).
    def f(x):
        big = x * 0.0 + 1e308
        return x * x + big * 0.0  # big*0.0 folds to nan? no: 1e308*0.0 == 0.0

    fun = rp.trace_like(f, (1.0,))
    g_opt = rp.grad(rp.compile(fun, optimize=True))(3.0)
    g_raw = rp.grad(rp.compile(fun, optimize=False), optimize=False)(3.0)
    np.testing.assert_allclose(g_opt, g_raw)


def test_unknown_op_errors_still_propagate():
    # The narrowed except must not swallow non-arithmetic failures.
    from repro.exec.prims import apply_binop
    from repro.util import ExecError

    with pytest.raises(ExecError):
        apply_binop("no_such_op", 1.0, 2.0)
