"""Fusion-engine and pass-framework tests.

Golden tests assert post-fusion SOAC statement counts per case (map→map,
map→reduce, map→scan, map→hist, horizontal), parity runs check every fused
program on ref/vec/plan (via ``tests/helpers.py``) including a slice of the
fuzz corpus, and the GMM acceptance check asserts the post-AD gradient
program carries measurably fewer SOACs with fusion on than off.
"""
import numpy as np
import pytest

import repro as rp
from helpers import check_grad, run_both
from repro.frontend.function import Compiled
from repro.ir import check_fun, count_soacs, pretty
from repro.ir.analysis import recognize_redomap_lambda
from repro.opt.fusion import fuse_fun, unfuse_fun
from repro.opt.pipeline import (
    AD_SAFE_PASSES,
    clear_opt_cache,
    opt_stats,
    optimize_fun,
    registered_passes,
    resolve_passes,
)

rng = np.random.default_rng(11)


def _trace(f, *args):
    return rp.trace_like(f, args)


# ---------------------------------------------------------------------------
# Golden structure tests: one fused SOAC per case
# ---------------------------------------------------------------------------


def test_fuse_map_map_golden():
    def f(xs):
        ys = rp.map(lambda x: x * 2.0, xs)
        return rp.map(lambda y: y + 1.0, ys)

    fun = _trace(f, np.ones(5))
    fz = optimize_fun(fun)
    check_fun(fz)
    assert count_soacs(fz) == 1
    run_both(rp.compile(fun), rng.standard_normal(5))


def test_fuse_map_reduce_golden():
    def f(xs, ys):
        zs = rp.map(lambda x, y: rp.sin(x) * y, xs, ys)
        return rp.sum(zs)

    fun = _trace(f, np.ones(6), np.ones(6))
    fz = optimize_fun(fun)
    check_fun(fz)
    assert count_soacs(fz) == 1
    txt = pretty(fz)
    assert "reduce" in txt and "map (" not in txt
    run_both(rp.compile(fun), rng.standard_normal(6), rng.standard_normal(6))


def test_fuse_map_scan_golden():
    def f(xs):
        ys = rp.map(lambda x: x * x + 0.5, xs)
        return rp.scan(lambda a, b: a + b, 0.0, ys)

    fun = _trace(f, np.ones(7))
    fz = optimize_fun(fun)
    check_fun(fz)
    assert count_soacs(fz) == 1
    assert "scan" in pretty(fz)
    run_both(rp.compile(fun), rng.standard_normal(7))


def test_fuse_map_hist_golden():
    def f(xs, inds):
        vs = rp.map(lambda x: x * 3.0 + 1.0, xs)
        return rp.reduce_by_index(4, lambda a, b: a + b, 0.0, inds, vs)

    inds = np.array([0, 1, 1, 3, 2, 0], dtype=np.int64)
    fun = _trace(f, np.ones(6), inds)
    fz = optimize_fun(fun)
    check_fun(fz)
    assert count_soacs(fz) == 1
    assert "reduce_by_index" in pretty(fz)
    run_both(rp.compile(fun), rng.standard_normal(6), inds)


def test_fuse_horizontal_golden():
    def f(xs):
        ys = rp.map(lambda x: x * 2.0, xs)
        zs = rp.map(lambda x: x + 3.0, xs)
        # Multiple consumers of each map block vertical fusion; the two
        # sibling maps over ``xs`` merge horizontally instead.
        return rp.sum(ys) + rp.sum(zs) + ys[0] * zs[0]

    fun = _trace(f, np.ones(5))
    fz = optimize_fun(fun)
    check_fun(fz)
    assert pretty(fz).count("map (") == 1
    run_both(rp.compile(fun), rng.standard_normal(5))


def test_fusion_respects_multi_consumer_maps():
    def f(xs):
        ys = rp.map(lambda x: x * 2.0, xs)
        zs = rp.map(lambda y: y + 1.0, ys)
        return rp.sum(zs) + ys[0]

    fun = _trace(f, np.ones(5))
    fz = optimize_fun(fun)
    check_fun(fz)
    # ys has two consumers, so the ys-producing map must survive.
    assert "map (" in pretty(fz)
    run_both(rp.compile(fun), rng.standard_normal(5))


# ---------------------------------------------------------------------------
# Redomap round trip: recognition, unfuse, AD through fused programs
# ---------------------------------------------------------------------------


def test_redomap_recognized_and_unfused():
    def f(xs):
        return rp.sum(rp.map(lambda x: rp.tanh(x) * 2.0, xs))

    fz = optimize_fun(_trace(f, np.ones(4)))
    (stm,) = fz.body.stms
    rm = recognize_redomap_lambda(stm.exp.lam)
    assert rm is not None and rm[0] == "add"
    uf = unfuse_fun(fz)
    check_fun(uf)
    assert count_soacs(uf) == 2  # map + canonical reduce
    xs = rng.standard_normal(4)
    np.testing.assert_allclose(
        Compiled(fz, optimize=False)(xs), Compiled(uf, optimize=False)(xs)
    )


def test_unfuse_is_identity_on_canonical_ops():
    def f(xs):
        return rp.reduce(lambda a, b: rp.minimum(a + b, 1e300), 0.0, xs)

    fun = optimize_fun(_trace(f, np.ones(4)), passes=AD_SAFE_PASSES)
    assert unfuse_fun(fun) == fun


def test_grad_through_fused_compiled():
    # vjp of a Compiled whose .fun is already fused must unfuse before AD.
    def f(xs, ys):
        zs = rp.map(lambda x, y: x * y + rp.sin(x), xs, ys)
        return rp.sum(zs)

    args = (rng.standard_normal(6), rng.standard_normal(6))
    fc = rp.compile(rp.trace_like(f, args))
    assert "map (" not in pretty(fc.fun)  # fused
    check_grad(f, args)


def test_hessian_diag_through_fused():
    def f(xs):
        return rp.sum(rp.map(lambda x: x * x * x, xs))

    fc = rp.compile(_trace(f, np.ones(5)))
    h = rp.hessian_diag(fc)
    xs = rng.standard_normal(5)
    for be in ("ref", "vec", "plan"):
        np.testing.assert_allclose(h(xs, backend=be), 6.0 * xs, rtol=1e-9)


def test_fused_scan_and_hist_gradients():
    def f(xs):
        s = rp.scan(lambda a, b: a + b, 0.0, rp.map(lambda x: x * 2.0, xs))
        return rp.sum(rp.map(lambda v: rp.tanh(v), s))

    args = (rng.standard_normal(5) * 0.5,)
    check_grad(f, args)


# ---------------------------------------------------------------------------
# Fuzz-corpus parity on fused programs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [3, 17, 4242, 90210])
def test_fuzz_corpus_fused_parity(seed):
    from test_fuzz_programs import _gen_program

    prog = _gen_program(seed)
    xs = np.random.default_rng(seed).standard_normal(7) * 0.8
    fc = rp.compile(rp.trace_like(prog, (xs,)))
    run_both(fc, xs)
    g = rp.grad(fc)
    ref = g(xs, backend="ref")
    for be in ("vec", "plan"):
        np.testing.assert_allclose(g(xs, backend=be), ref, rtol=1e-9, atol=1e-9)


# ---------------------------------------------------------------------------
# Pass framework: registry, env override, stats, cache bounds
# ---------------------------------------------------------------------------


def test_registry_and_resolve():
    names = [p.name for p in registered_passes()]
    assert names == ["simplify", "cse", "fuse", "dce"]
    assert [p.name for p in resolve_passes(["dce", "simplify"])] == ["simplify", "dce"]
    with pytest.raises(ValueError):
        resolve_passes(["nope"])


def test_env_override_disables_fusion(monkeypatch):
    def f(xs):
        return rp.sum(rp.map(lambda x: x * 2.0, xs))

    fun = _trace(f, np.ones(4))
    monkeypatch.setenv("REPRO_OPT_PASSES", "-fuse")
    off = optimize_fun(fun, cache=False)
    monkeypatch.setenv("REPRO_OPT_PASSES", "simplify,cse,fuse,dce")
    on = optimize_fun(fun, cache=False)
    assert count_soacs(on) < count_soacs(off)
    monkeypatch.setenv("REPRO_OPT_PASSES", "none")
    assert optimize_fun(fun, cache=False) == fun


def test_opt_stats_counters():
    def f(x):
        return x * 1.0 + 0.0

    before = opt_stats()["passes"]["simplify"]["fired"]
    optimize_fun(_trace(f, 1.0), cache=False)
    after = opt_stats()
    assert after["passes"]["simplify"]["fired"] > before
    assert set(after["passes"]) == {"simplify", "cse", "fuse", "dce"}
    assert {"hits", "misses", "evictions", "entries"} <= set(after["cache"])


def test_opt_cache_lru_eviction(monkeypatch):
    monkeypatch.setenv("REPRO_OPT_CACHE_SIZE", "2")
    clear_opt_cache()
    evicted0 = opt_stats()["cache"]["evictions"]
    funs = [_trace(lambda x, _k=k: x * float(_k + 2), 1.0) for k in range(4)]
    for fn in funs:
        optimize_fun(fn)
    st = opt_stats()["cache"]
    assert st["entries"] <= 2
    assert st["evictions"] > evicted0
    clear_opt_cache()


def test_opt_cache_identity_guard():
    clear_opt_cache()
    fun = _trace(lambda x: x * 2.0 + 1.0, 1.0)
    o1 = optimize_fun(fun)
    assert optimize_fun(fun) is o1  # memoised
    clear_opt_cache()


# ---------------------------------------------------------------------------
# GMM acceptance: fewer SOACs with fusion on, results agree
# ---------------------------------------------------------------------------


def test_gmm_gradient_fewer_soacs_with_fusion():
    from repro.apps import datagen, gmm

    n, d, K = 1000, 64, 200  # Table 5 D0 — structural only, nothing executed
    fun = gmm.build_ir(n, d, K)
    g_on = rp.vjp(rp.compile(fun), wrt=[0, 1, 2])
    g_off = rp.vjp(
        rp.compile(fun, passes=AD_SAFE_PASSES), wrt=[0, 1, 2], passes=AD_SAFE_PASSES
    )
    s_on, s_off = count_soacs(g_on.fun), count_soacs(g_off.fun)
    assert s_on < s_off, (s_on, s_off)

    # Numerically identical gradients at an executable size, every backend.
    n, d, K = 24, 3, 4
    args = datagen.gmm_instance(n, d, K, 1)[:4]
    fun = gmm.build_ir(n, d, K)
    g_on = rp.vjp(rp.compile(fun), wrt=[0, 1, 2])
    g_off = rp.vjp(
        rp.compile(fun, passes=AD_SAFE_PASSES), wrt=[0, 1, 2], passes=AD_SAFE_PASSES
    )
    seeds = args + (1.0,)
    ref = g_off(*seeds, backend="ref")
    for be in ("ref", "vec", "plan"):
        out = g_on(*seeds, backend=be)
        for a, b in zip(ref, out):
            np.testing.assert_allclose(
                np.asarray(a), np.asarray(b), rtol=1e-8, atol=1e-10
            )


# ---------------------------------------------------------------------------
# Non-identity neutral elements must survive the fast paths (review fix)
# ---------------------------------------------------------------------------


def test_reduce_nonidentity_ne_all_backends():
    def f(xs):
        return rp.reduce(lambda a, b: a + rp.tanh(b), 5.0, xs)  # redomap shape

    def g(xs):
        return rp.reduce(lambda a, b: a + b, 7.0, xs)  # canonical binop

    def h(xs):
        return rp.reduce(lambda a, b: rp.minimum(a, b), -3.0, xs)  # min, ne not inf

    xs = rng.standard_normal(6)
    for fn, expect in (
        (f, 5.0 + np.tanh(xs).sum()),
        (g, 7.0 + xs.sum()),
        (h, min(-3.0, xs.min())),
    ):
        fc = rp.compile(rp.trace_like(fn, (xs,)))
        for be in ("ref", "vec", "plan"):
            np.testing.assert_allclose(fc(xs, backend=be), expect, rtol=1e-12)
        run_both(fc, xs)


def test_scan_nonidentity_ne_all_backends():
    def f(xs):
        return rp.scan(lambda a, b: a + b, 4.0, xs)  # canonical, ne != 0

    def g(xs):
        ys = rp.map(lambda x: x * 2.0, xs)
        return rp.scan(lambda a, b: a + b, 4.0, ys)  # fuses to redomap scan

    xs = rng.standard_normal(5)
    for fn, expect in ((f, 4.0 + np.cumsum(xs)), (g, 4.0 + np.cumsum(2.0 * xs))):
        fc = rp.compile(rp.trace_like(fn, (xs,)))
        for be in ("ref", "vec", "plan"):
            np.testing.assert_allclose(fc(xs, backend=be), expect, rtol=1e-12)


def test_fused_reduce_nonidentity_ne_through_fusion():
    # map fused INTO a reduce whose ne is not the op identity.
    def f(xs):
        ys = rp.map(lambda x: x * x, xs)
        return rp.reduce(lambda a, b: a + b, 10.0, ys)

    xs = rng.standard_normal(6)
    fc = rp.compile(rp.trace_like(f, (xs,)))
    assert count_soacs(fc.fun) == 1  # fused
    for be in ("ref", "vec", "plan"):
        np.testing.assert_allclose(
            fc(xs, backend=be), 10.0 + (xs * xs).sum(), rtol=1e-12
        )
