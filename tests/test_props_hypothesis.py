"""Hypothesis property tests on core invariants."""
import itertools

import numpy as np
from hypothesis import given, settings, strategies as st

import repro as rp
from repro.ir.cost_model import estimate_fun
from helpers import check_jvp_vjp_consistency, run_both
from test_fuzz_programs import _gen_program

_finite = st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False)


@settings(max_examples=30, deadline=None)
@given(st.lists(_finite, min_size=1, max_size=10), st.integers(0, 10**6))
def test_grad_sum_is_ones(vals, seed):
    xs = np.array(vals)
    f = rp.compile(rp.trace_like(lambda v: rp.sum(v), (xs,)))
    np.testing.assert_allclose(rp.grad(f)(xs), np.ones_like(xs))


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 8), st.integers(0, 10**6))
def test_jvp_vjp_consistency_random_pipeline(n, seed):
    r = np.random.default_rng(seed)
    xs = r.standard_normal(n) * 0.7
    check_jvp_vjp_consistency(
        lambda v: rp.sum(rp.map(lambda x: rp.sin(x) * x + rp.exp(-x * x), v)),
        (xs,),
        seed=seed,
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 6), st.integers(1, 5), st.integers(0, 10**6))
def test_matmul_adjoint_property(n, m, seed):
    """⟨S, A·B⟩ gradients: dA = S·Bᵀ, dB = Aᵀ·S — for random shapes."""
    r = np.random.default_rng(seed)
    A = r.standard_normal((n, 3))
    B = r.standard_normal((3, m))
    S = r.standard_normal((n, m))
    f = rp.compile(rp.trace_like(lambda a, b: rp.matmul(a, b), (A, B)))
    _, dA, dB = rp.vjp(f)(A, B, S)
    np.testing.assert_allclose(dA, S @ B.T, rtol=1e-9, atol=1e-9)
    np.testing.assert_allclose(dB, A.T @ S, rtol=1e-9, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 9), st.integers(2, 5), st.integers(0, 10**6))
def test_hist_grad_equals_gather(n, m, seed):
    """∂/∂v Σ h(v)² = 2·h[inds] for in-range indices."""
    r = np.random.default_rng(seed)
    vals = r.standard_normal(n)
    inds = r.integers(0, m, n)

    def f(i, v):
        h = rp.reduce_by_index(m, lambda a, b: a + b, 0.0, i, v)
        return rp.sum(rp.map(lambda x: x * x, h))

    fc = rp.compile(rp.trace_like(f, (inds, vals)))
    g = rp.grad(fc, wrt=[1])(inds, vals)
    h = np.zeros(m)
    np.add.at(h, inds, vals)
    np.testing.assert_allclose(g, 2 * h[inds], rtol=1e-9)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 8), st.integers(0, 10**6))
def test_scan_add_grad_property(n, seed):
    """∂/∂x_j Σ_i scan(x)_i = n - j (each x_j appears in n-j prefixes)."""
    r = np.random.default_rng(seed)
    xs = r.standard_normal(n)
    f = rp.compile(rp.trace_like(lambda v: rp.sum(rp.scan(lambda a, b: a + b, 0.0, v)), (xs,)))
    g = rp.grad(f)(xs)
    np.testing.assert_allclose(g, np.arange(n, 0, -1).astype(float))


@settings(max_examples=20, deadline=None)
@given(
    st.integers(1, 6),
    st.integers(1, 4),
    st.integers(0, 10**6),
)
def test_backend_equivalence_random_programs(n, k, seed):
    r = np.random.default_rng(seed)
    mat = r.standard_normal((n, k))

    def f(m):
        def row(rr):
            t = rp.sum(rp.map(lambda x: rp.tanh(x) * x, rr))
            u = rp.fori_loop(3, lambda i, a: a * 0.7 + t, t)
            return rp.cond(u > 0.0, lambda: u, lambda: u * u)

        return rp.map(row, m)

    fc = rp.compile(rp.trace_like(f, (mat,)))
    run_both(fc, mat)


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 8), st.integers(0, 10**6))
def test_optimization_pipeline_preserves_gradients(n, seed):
    """grad with and without the optimisation pipeline must agree."""
    r = np.random.default_rng(seed)
    xs = r.standard_normal(n) * 0.5

    def f(v):
        s = rp.scan(lambda a, b: a + b, 0.0, v)
        return rp.sum(rp.map(lambda x: rp.exp(-x * x), s))

    fun = rp.trace_like(f, (xs,))
    g_opt = rp.grad(rp.compile(fun, optimize=True))(xs)
    g_raw = rp.grad(rp.compile(fun, optimize=False), optimize=False)(xs)
    np.testing.assert_allclose(g_opt, g_raw, rtol=1e-10)


# ---------------------------------------------------------------------------
# Static cost model vs the dynamic CostRecorder (fuzz corpus)
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6), n=st.integers(1, 9), dseed=st.integers(0, 10**6))
def test_cost_estimator_work_within_constant_factor(seed, n, dseed):
    """The static estimator's work prediction brackets the recorded work of
    a reference interpretation within a constant factor on arbitrary fuzz
    programs (the estimator only over-approximates: If branches count as
    the max of both sides, loops/scratch assume conservative extents)."""
    prog = _gen_program(seed)
    xs = np.random.default_rng(dseed).standard_normal(n) * 0.8
    fc = rp.compile(rp.trace_like(prog, (xs,)))
    rec = fc.cost(xs)
    est = estimate_fun(fc.fun, [tuple(xs.shape)]).total
    assert rec.work * 0.25 <= est.work <= rec.work * 8 + 16, (rec.work, est.work)
    # traffic is bracketed too (looser: branch maxima inflate array reads)
    assert est.mem <= rec.mem * 8 + 64, (rec.mem, est.mem)


def test_cost_estimator_rank_order_consistent_on_fuzz_corpus():
    """Across a fixed corpus spanning ~3 orders of magnitude of recorded
    work, the estimator must rank programs consistently: every pair whose
    recorded work differs by >= 4x is ordered the same way by the estimate.
    This is the property the decision points rely on (which SOAC is
    heaviest, which rewrite is cheaper) — absolute precision is not."""
    rows = []
    for seed in range(12):
        for n in (3, 24, 192):
            prog = _gen_program(seed)
            xs = np.random.default_rng(seed).standard_normal(n) * 0.8
            fc = rp.compile(rp.trace_like(prog, (xs,)))
            rec = fc.cost(xs)
            est = estimate_fun(fc.fun, [tuple(xs.shape)]).total
            if rec.work > 0:
                rows.append((rec.work, est.work))
    assert len(rows) >= 30
    violations = [
        (a, b)
        for a, b in itertools.combinations(rows, 2)
        if (a[0] >= 4 * b[0] or b[0] >= 4 * a[0]) and (a[0] > b[0]) != (a[1] > b[1])
    ]
    assert not violations, violations[:5]
