"""Eager tape-AD baseline tests (the PyTorch/Tapenade comparator must itself
be correct for the benchmark ratios to mean anything)."""
import numpy as np
import pytest

from repro.baselines import eager as eg

rng = np.random.default_rng(8)


def _fd(f, args, k, eps=1e-6):
    a = np.array(args[k], dtype=float)
    out = np.zeros_like(a)
    it = np.nditer(a, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        ap = [np.array(x, dtype=float) for x in args]
        am = [np.array(x, dtype=float) for x in args]
        ap[k][idx] += eps
        am[k][idx] -= eps
        out[idx] = (f(*[eg.T(x) for x in ap]).data - f(*[eg.T(x) for x in am]).data) / (2 * eps)
    return out


def check(f, args, tol=1e-5):
    g = eg.grad(lambda *ts: f(*ts))
    gs = g(*args)
    gs = gs if isinstance(gs, tuple) else (gs,)
    for k in range(len(args)):
        np.testing.assert_allclose(gs[k], _fd(f, args, k), rtol=tol, atol=tol)


def test_elementwise_and_broadcast():
    check(lambda x, y: (x * y + x / (y + 2.0)).sum(), (rng.standard_normal(5), rng.standard_normal(5)))
    # broadcasting with unbroadcast in backward
    check(lambda x, y: (x.reshape(3, 1) * y.reshape(1, 4)).sum(), (rng.standard_normal(3), rng.standard_normal(4)))


def test_matmul():
    check(lambda a, b: (a @ b).sum(), (rng.standard_normal((3, 4)), rng.standard_normal((4, 2))))


def test_unops():
    x = np.abs(rng.standard_normal(4)) + 0.5
    check(lambda v: (eg.log(v) + eg.sqrt(v) + eg.exp(v) + eg.tanh(v)).sum(), (x,))
    check(lambda v: (eg.sigmoid(v) + eg.erf(v) + eg.sin(v) * eg.cos(v)).sum(), (x,))


def test_reductions_max_min():
    x = rng.standard_normal(6)
    check(lambda v: v.max() * 2.0, (x,))
    check(lambda v: v.min() * 2.0, (x,))


def test_indexing_and_scatter_add():
    idx = np.array([0, 2, 1, 0])
    check(lambda v: (v[idx] * v[idx]).sum(), (rng.standard_normal(3),))
    def f(v):
        h = eg.scatter_add(eg.T(np.zeros(3)), idx, v * v)
        return (h * h).sum()
    check(f, (rng.standard_normal(4),))


def test_logsumexp_stable():
    x = rng.standard_normal(5) + 500.0  # would overflow a naive exp
    g = eg.grad(lambda v: eg.logsumexp(v))
    gs = g(x)
    sm = np.exp(x - x.max())
    np.testing.assert_allclose(gs, sm / sm.sum(), rtol=1e-8)


def test_where_stack_concat():
    c = np.array([True, False, True])
    check(lambda a, b: eg.where(c, a, b).sum(), (rng.standard_normal(3), rng.standard_normal(3)))
    check(lambda a, b: (eg.concat([a, b]) ** 2).sum(), (rng.standard_normal(2), rng.standard_normal(3)))


def test_tape_memory_instrumented():
    eg.tape.reset()
    x = eg.T(np.ones(1000), requires_grad=True)
    y = ((x * 2.0) + 1.0) * x
    assert eg.tape.peak_tape_bytes >= 3 * 8000  # every intermediate retained
